package ehframe

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/funseeker/funseeker/internal/leb128"
)

// buildCIE assembles a raw CIE with the given augmentation and encoding
// bytes, for exercising parser paths the builder never emits.
func buildCIE(aug string, augData []byte) []byte {
	var body []byte
	body = append(body, 0, 0, 0, 0) // CIE id
	body = append(body, 1)          // version
	body = append(body, aug...)
	body = append(body, 0)
	body = leb128.AppendUleb(body, 1)  // code align
	body = leb128.AppendSleb(body, -8) // data align
	body = append(body, 16)            // RA register
	if len(aug) > 0 && aug[0] == 'z' {
		body = leb128.AppendUleb(body, uint64(len(augData)))
		body = append(body, augData...)
	}
	body = append(body, 0, 0, 0) // CFI nops
	var out []byte
	for (len(body)+4)%8 != 0 {
		body = append(body, 0)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	return append(out, body...)
}

// appendFDE appends a raw FDE whose pc-begin/range use the CIE's fdeEnc.
func appendFDE(section []byte, cieOff int, fields []byte) []byte {
	var body []byte
	ciePtr := uint32(len(section) + 4 - cieOff)
	body = binary.LittleEndian.AppendUint32(body, ciePtr)
	body = append(body, fields...)
	for (len(body)+4)%8 != 0 {
		body = append(body, 0)
	}
	section = binary.LittleEndian.AppendUint32(section, uint32(len(body)))
	return append(section, body...)
}

func terminate(section []byte) []byte {
	return append(section, 0, 0, 0, 0)
}

func TestParseAbsPtrEncoding(t *testing.T) {
	// CIE with R = absptr: pc-begin is a raw 8-byte address.
	sec := buildCIE("zR", []byte{EncAbsPtr})
	fields := make([]byte, 16)
	binary.LittleEndian.PutUint64(fields[0:], 0x401000)
	binary.LittleEndian.PutUint64(fields[8:], 0x40)
	sec = appendFDE(sec, 0, append(fields, 0 /* no aug */))
	sec = terminate(sec)
	fdes, err := Parse(sec, 0x500000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fdes) != 1 || fdes[0].PCBegin != 0x401000 || fdes[0].PCRange != 0x40 {
		t.Fatalf("fdes = %+v", fdes)
	}
}

func TestParseUData4Encoding(t *testing.T) {
	sec := buildCIE("zR", []byte{EncUData4})
	var fields []byte
	fields = binary.LittleEndian.AppendUint32(fields, 0x8049000)
	fields = binary.LittleEndian.AppendUint32(fields, 0x30)
	fields = append(fields, 0)
	sec = appendFDE(sec, 0, fields)
	sec = terminate(sec)
	fdes, err := Parse(sec, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fdes) != 1 || fdes[0].PCBegin != 0x8049000 {
		t.Fatalf("fdes = %+v", fdes)
	}
}

func TestParseULEBEncoding(t *testing.T) {
	sec := buildCIE("zR", []byte{EncULEB128})
	var fields []byte
	fields = leb128.AppendUleb(fields, 0x1234)
	fields = leb128.AppendUleb(fields, 0x10)
	fields = append(fields, 0)
	sec = appendFDE(sec, 0, fields)
	sec = terminate(sec)
	fdes, err := Parse(sec, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fdes) != 1 || fdes[0].PCBegin != 0x1234 || fdes[0].PCRange != 0x10 {
		t.Fatalf("fdes = %+v", fdes)
	}
}

func TestParseNoAugmentationCIE(t *testing.T) {
	// A CIE without the 'z' augmentation: FDEs fall back to absptr.
	sec := buildCIE("", nil)
	fields := make([]byte, 16)
	binary.LittleEndian.PutUint64(fields[0:], 0x2000)
	binary.LittleEndian.PutUint64(fields[8:], 0x8)
	sec = appendFDE(sec, 0, fields)
	sec = terminate(sec)
	fdes, err := Parse(sec, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fdes) != 1 || fdes[0].PCBegin != 0x2000 {
		t.Fatalf("fdes = %+v", fdes)
	}
}

func TestParseSignalFrameAugmentation(t *testing.T) {
	// "zRS" (signal frame marker) must parse; 'S' carries no data.
	sec := buildCIE("zRS", []byte{EncPCRel | EncSData4})
	var fields []byte
	fields = binary.LittleEndian.AppendUint32(fields, 0x100) // pcrel
	fields = binary.LittleEndian.AppendUint32(fields, 0x10)
	fields = append(fields, 0)
	sec = appendFDE(sec, 0, fields)
	sec = terminate(sec)
	if _, err := Parse(sec, 0x9000, 8); err != nil {
		t.Fatal(err)
	}
}

func TestParseUnknownAugmentationWarns(t *testing.T) {
	// A lone CIE with an unknown augmentation character must not fail
	// the parse; it degrades with a warning.
	sec := buildCIE("zQ", []byte{0x00})
	sec = terminate(sec)
	fdes, warns, err := ParseWithWarnings(sec, 0, 8)
	if err != nil {
		t.Fatalf("ParseWithWarnings: %v", err)
	}
	if len(fdes) != 0 {
		t.Fatalf("fdes = %+v, want none", fdes)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], `augmentation "Q"`) {
		t.Fatalf("warns = %q, want one unknown-augmentation warning", warns)
	}
}

func TestParseUnknownAugmentationAfterR(t *testing.T) {
	// "zRQ": 'R' is read before the unknown 'Q', so the FDE pointer
	// encoding is known and the CIE's FDEs still decode.
	sec := buildCIE("zRQ", []byte{EncUData4, 0xAA})
	var fields []byte
	fields = binary.LittleEndian.AppendUint32(fields, 0x8049000)
	fields = binary.LittleEndian.AppendUint32(fields, 0x30)
	fields = append(fields, 0)
	sec = appendFDE(sec, 0, fields)
	sec = terminate(sec)
	fdes, warns, err := ParseWithWarnings(sec, 0, 4)
	if err != nil {
		t.Fatalf("ParseWithWarnings: %v", err)
	}
	if len(fdes) != 1 || fdes[0].PCBegin != 0x8049000 || fdes[0].PCRange != 0x30 {
		t.Fatalf("fdes = %+v", fdes)
	}
	if len(warns) != 1 {
		t.Fatalf("warns = %q, want one", warns)
	}
}

func TestParseUnknownAugmentationBeforeR(t *testing.T) {
	// "zQR": the unknown 'Q' precedes 'R', so that CIE's FDE pointer
	// encoding is unknowable and its FDEs are skipped — but a healthy
	// CIE later in the same section keeps all of its FDEs. One exotic
	// CIE must never drop the whole section's EH info.
	sec := buildCIE("zQR", []byte{0xAA, EncUData4})
	var badFields []byte
	badFields = binary.LittleEndian.AppendUint32(badFields, 0x8049000)
	badFields = binary.LittleEndian.AppendUint32(badFields, 0x30)
	badFields = append(badFields, 0)
	sec = appendFDE(sec, 0, badFields)

	goodCIEOff := len(sec)
	sec = append(sec, buildCIE("zR", []byte{EncUData4})...)
	var goodFields []byte
	goodFields = binary.LittleEndian.AppendUint32(goodFields, 0x804a000)
	goodFields = binary.LittleEndian.AppendUint32(goodFields, 0x50)
	goodFields = append(goodFields, 0)
	sec = appendFDE(sec, goodCIEOff, goodFields)
	sec = terminate(sec)

	fdes, warns, err := ParseWithWarnings(sec, 0, 4)
	if err != nil {
		t.Fatalf("ParseWithWarnings: %v", err)
	}
	if len(fdes) != 1 || fdes[0].PCBegin != 0x804a000 || fdes[0].PCRange != 0x50 {
		t.Fatalf("fdes = %+v, want only the healthy CIE's FDE", fdes)
	}
	if len(warns) != 2 {
		t.Fatalf("warns = %q, want CIE downgrade + skipped-FDE warnings", warns)
	}
	if !strings.Contains(warns[1], "skipped 1 FDE") {
		t.Fatalf("warns[1] = %q, want skipped-FDE count", warns[1])
	}
	// The plain Parse wrapper sees the same FDE list, no error.
	plain, err := Parse(sec, 0, 4)
	if err != nil || len(plain) != 1 {
		t.Fatalf("Parse = %+v, %v", plain, err)
	}
}

func TestParseIndirectPointerFails(t *testing.T) {
	sec := buildCIE("zR", []byte{EncIndirect | EncSData4})
	var fields []byte
	fields = binary.LittleEndian.AppendUint32(fields, 0x100)
	fields = binary.LittleEndian.AppendUint32(fields, 0x10)
	fields = append(fields, 0)
	sec = appendFDE(sec, 0, fields)
	sec = terminate(sec)
	if _, err := Parse(sec, 0, 8); err == nil {
		t.Fatal("want error for indirect pointers")
	}
}

func TestParseDataRelApplicationFails(t *testing.T) {
	sec := buildCIE("zR", []byte{EncDataRel | EncUData4})
	var fields []byte
	fields = binary.LittleEndian.AppendUint32(fields, 0x100)
	fields = binary.LittleEndian.AppendUint32(fields, 0x10)
	fields = append(fields, 0)
	sec = appendFDE(sec, 0, fields)
	sec = terminate(sec)
	if _, err := Parse(sec, 0, 8); err == nil {
		t.Fatal("want error for datarel application")
	}
}

func TestParseUData2AndSData2(t *testing.T) {
	for _, enc := range []byte{EncUData2, EncSData2} {
		sec := buildCIE("zR", []byte{enc})
		var fields []byte
		fields = binary.LittleEndian.AppendUint16(fields, 0x123)
		fields = binary.LittleEndian.AppendUint16(fields, 0x10)
		fields = append(fields, 0)
		sec = appendFDE(sec, 0, fields)
		sec = terminate(sec)
		fdes, err := Parse(sec, 0, 8)
		if err != nil {
			t.Fatalf("enc %#x: %v", enc, err)
		}
		if fdes[0].PCBegin != 0x123 {
			t.Fatalf("enc %#x: %+v", enc, fdes[0])
		}
	}
}

func TestParseUData8Encoding(t *testing.T) {
	sec := buildCIE("zR", []byte{EncUData8})
	fields := make([]byte, 16)
	binary.LittleEndian.PutUint64(fields[0:], 0xDEADBEEF)
	binary.LittleEndian.PutUint64(fields[8:], 0x20)
	sec = appendFDE(sec, 0, append(fields, 0))
	sec = terminate(sec)
	fdes, err := Parse(sec, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fdes[0].PCBegin != 0xDEADBEEF {
		t.Fatalf("%+v", fdes[0])
	}
}
