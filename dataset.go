package funseeker

import (
	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/groundtruth"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// The synthetic-toolchain surface: build CET-enabled ELF binaries with
// precisely known ground truth, in any of the paper's configurations.

// Compiler identifies the modeled toolchain (GCC or Clang).
type Compiler = synth.Compiler

// Modeled compilers.
const (
	GCC   = synth.GCC
	Clang = synth.Clang
)

// OptLevel is the modeled optimization level.
type OptLevel = synth.OptLevel

// Optimization levels.
const (
	O0    = synth.O0
	O1    = synth.O1
	O2    = synth.O2
	O3    = synth.O3
	Os    = synth.Os
	Ofast = synth.Ofast
)

// Architecture decode/encode modes.
const (
	// ModeX86 selects 32-bit x86.
	ModeX86 = x86.Mode32
	// ModeX64 selects 64-bit x86-64.
	ModeX64 = x86.Mode64
)

// BuildConfig is one build configuration: compiler × architecture ×
// PIE × optimization level.
type BuildConfig = synth.Config

// AllBuildConfigs enumerates every configuration (48 = 2 compilers × 2
// architectures × 2 PIE settings × 6 optimization levels).
func AllBuildConfigs() []BuildConfig { return synth.AllConfigs() }

// FuncSpec describes one source-level function to synthesize.
type FuncSpec = synth.FuncSpec

// ProgramSpec is one program to compile.
type ProgramSpec = synth.ProgSpec

// Lang is the source language of a program spec.
type Lang = synth.Lang

// Source languages for program specs.
const (
	// LangC marks a C program (no exception handling).
	LangC = synth.LangC
	// LangCPP marks a C++ program (functions may carry landing pads).
	LangCPP = synth.LangCPP
)

// BuildResult is one compiled binary: the ELF images plus ground truth.
type BuildResult = synth.Result

// GroundTruth is the per-binary function-entry ground truth.
type GroundTruth = groundtruth.GT

// Compile turns a program specification into a CET-enabled ELF binary.
func Compile(spec *ProgramSpec, cfg BuildConfig) (*BuildResult, error) {
	return synth.Compile(spec, cfg)
}

// Suite identifies one benchmark suite of the paper's corpus.
type Suite = corpus.Suite

// The paper's three suites.
const (
	// SuiteCoreutils models GNU Coreutils v9.0 (108 C programs).
	SuiteCoreutils = corpus.Coreutils
	// SuiteBinutils models GNU Binutils v2.37 (15 C programs).
	SuiteBinutils = corpus.Binutils
	// SuiteSPEC models SPEC CPU 2017 (47 C/C++ programs).
	SuiteSPEC = corpus.SPEC
)

// CorpusOptions tunes corpus generation.
type CorpusOptions = corpus.Options

// GenerateSuite builds the program specifications for one suite.
func GenerateSuite(s Suite, opts CorpusOptions) []*ProgramSpec {
	return corpus.Generate(s, opts)
}

// LoadGroundTruth reads a ground-truth sidecar written by cmd/synthgen.
func LoadGroundTruth(path string) (*GroundTruth, error) {
	return groundtruth.Load(path)
}
