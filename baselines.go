package funseeker

import (
	"github.com/funseeker/funseeker/internal/eval"
	"github.com/funseeker/funseeker/internal/fetch"
	"github.com/funseeker/funseeker/internal/ghidra"
	"github.com/funseeker/funseeker/internal/idapro"
)

// The comparison-tool surface: the three state-of-the-art baselines the
// paper evaluates against, reimplemented at the fidelity needed for
// comparative measurement, plus scoring utilities.

// RunIDA identifies function entries with the IDA Pro model: recursive
// descent, prologue signatures, code-reference analysis, unverified
// tail-call splitting, and orphan-code rescue — but no use of end-branch
// instructions.
func RunIDA(bin *Binary) ([]uint64, error) {
	r, err := idapro.Identify(bin)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunIDAWithContext is RunIDA over a shared analysis context, reusing the
// memoized landing-pad set and instruction index.
func RunIDAWithContext(ctx *AnalysisContext) ([]uint64, error) {
	r, err := idapro.IdentifyWithContext(ctx)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunGhidra identifies function entries with the Ghidra model:
// .eh_frame FDE starts, recursive descent, and prologue signatures.
func RunGhidra(bin *Binary) ([]uint64, error) {
	r, err := ghidra.Identify(bin)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunGhidraWithContext is RunGhidra over a shared analysis context,
// reusing the memoized .eh_frame parse.
func RunGhidraWithContext(ctx *AnalysisContext) ([]uint64, error) {
	r, err := ghidra.IdentifyWithContext(ctx)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunFETCH identifies function entries with the FETCH model (Pang et
// al., DSN 2021): .eh_frame FDE starts plus tail-call targets verified by
// CFG-level stack-height and calling-convention analysis.
func RunFETCH(bin *Binary) ([]uint64, error) {
	r, err := fetch.Identify(bin)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunFETCHWithContext is RunFETCH over a shared analysis context, reusing
// the memoized .eh_frame parse and instruction index (the stack-height
// verification — FETCH's real cost — still runs in full).
func RunFETCHWithContext(ctx *AnalysisContext) ([]uint64, error) {
	r, err := fetch.IdentifyWithContext(ctx)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// Metrics is a precision/recall accumulator.
type Metrics = eval.Metrics

// Score compares identified entries against ground truth.
func Score(found []uint64, gt *GroundTruth) Metrics {
	return eval.Score(found, gt)
}
