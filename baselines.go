package funseeker

import (
	"context"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/eval"
	"github.com/funseeker/funseeker/internal/fetch"
	"github.com/funseeker/funseeker/internal/ghidra"
	"github.com/funseeker/funseeker/internal/idapro"
)

// The comparison-tool surface: the three state-of-the-art baselines the
// paper evaluates against, reimplemented at the fidelity needed for
// comparative measurement, plus scoring utilities.
//
// Each baseline has a *Ctx form. Cancellation reaches the shared linear
// sweep (the dominant cost for every tool) through the analysis context;
// the tool-specific refinement passes check ctx between stages. As
// everywhere in this package, ctx is a context.Context and actx a
// *AnalysisContext.

// primeCtx computes the shared sweep under ctx so a baseline run can be
// canceled inside its dominant stage, then re-checks ctx before handing
// control to the (uncancellable, but much cheaper) tool model.
func primeCtx(ctx context.Context, actx *AnalysisContext) error {
	if _, err := actx.SweepCtx(ctx); err != nil {
		return err
	}
	return ctx.Err()
}

// RunIDA identifies function entries with the IDA Pro model: recursive
// descent, prologue signatures, code-reference analysis, unverified
// tail-call splitting, and orphan-code rescue — but no use of end-branch
// instructions.
func RunIDA(bin *Binary) ([]uint64, error) {
	r, err := idapro.Identify(bin)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunIDACtx is RunIDA under a cancelable ctx.
func RunIDACtx(ctx context.Context, bin *Binary) ([]uint64, error) {
	return RunIDAWithContextCtx(ctx, analysis.NewContext(bin))
}

// RunIDAWithContext is RunIDA over a shared analysis context, reusing the
// memoized landing-pad set and instruction index.
func RunIDAWithContext(actx *AnalysisContext) ([]uint64, error) {
	r, err := idapro.IdentifyWithContext(actx)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunIDAWithContextCtx is RunIDAWithContext under a cancelable ctx.
func RunIDAWithContextCtx(ctx context.Context, actx *AnalysisContext) ([]uint64, error) {
	if err := primeCtx(ctx, actx); err != nil {
		return nil, err
	}
	return RunIDAWithContext(actx)
}

// RunGhidra identifies function entries with the Ghidra model:
// .eh_frame FDE starts, recursive descent, and prologue signatures.
func RunGhidra(bin *Binary) ([]uint64, error) {
	r, err := ghidra.Identify(bin)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunGhidraCtx is RunGhidra under a cancelable ctx.
func RunGhidraCtx(ctx context.Context, bin *Binary) ([]uint64, error) {
	return RunGhidraWithContextCtx(ctx, analysis.NewContext(bin))
}

// RunGhidraWithContext is RunGhidra over a shared analysis context,
// reusing the memoized .eh_frame parse.
func RunGhidraWithContext(actx *AnalysisContext) ([]uint64, error) {
	r, err := ghidra.IdentifyWithContext(actx)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunGhidraWithContextCtx is RunGhidraWithContext under a cancelable ctx.
func RunGhidraWithContextCtx(ctx context.Context, actx *AnalysisContext) ([]uint64, error) {
	if err := primeCtx(ctx, actx); err != nil {
		return nil, err
	}
	return RunGhidraWithContext(actx)
}

// RunFETCH identifies function entries with the FETCH model (Pang et
// al., DSN 2021): .eh_frame FDE starts plus tail-call targets verified by
// CFG-level stack-height and calling-convention analysis.
func RunFETCH(bin *Binary) ([]uint64, error) {
	r, err := fetch.Identify(bin)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunFETCHCtx is RunFETCH under a cancelable ctx.
func RunFETCHCtx(ctx context.Context, bin *Binary) ([]uint64, error) {
	return RunFETCHWithContextCtx(ctx, analysis.NewContext(bin))
}

// RunFETCHWithContext is RunFETCH over a shared analysis context, reusing
// the memoized .eh_frame parse and instruction index (the stack-height
// verification — FETCH's real cost — still runs in full).
func RunFETCHWithContext(actx *AnalysisContext) ([]uint64, error) {
	r, err := fetch.IdentifyWithContext(actx)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// RunFETCHWithContextCtx is RunFETCHWithContext under a cancelable ctx.
func RunFETCHWithContextCtx(ctx context.Context, actx *AnalysisContext) ([]uint64, error) {
	if err := primeCtx(ctx, actx); err != nil {
		return nil, err
	}
	return RunFETCHWithContext(actx)
}

// Metrics is a precision/recall accumulator.
type Metrics = eval.Metrics

// Score compares identified entries against ground truth.
func Score(found []uint64, gt *GroundTruth) Metrics {
	return eval.Score(found, gt)
}
