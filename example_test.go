package funseeker_test

import (
	"fmt"

	"github.com/funseeker/funseeker"
)

// Example demonstrates the complete round trip: synthesize a CET-enabled
// binary with known ground truth, identify its function entries, and
// score the result.
func Example() {
	spec := &funseeker.ProgramSpec{
		Name: "demo",
		Lang: funseeker.LangC,
		Seed: 1,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1}},
			{Name: "helper", Static: true},
			{Name: "exported_api"},
		},
	}
	cfg := funseeker.BuildConfig{
		Compiler: funseeker.GCC,
		Mode:     funseeker.ModeX64,
		Opt:      funseeker.O2,
	}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	report, err := funseeker.IdentifyBytes(res.Stripped, funseeker.DefaultOptions)
	if err != nil {
		fmt.Println("identify:", err)
		return
	}
	m := funseeker.Score(report.Entries, res.GT)
	fmt.Printf("found %d entries, precision %.0f%%, recall %.0f%%\n",
		len(report.Entries), m.Precision(), m.Recall())
	// Output:
	// found 4 entries, precision 100%, recall 100%
}

// ExampleClassifyEndbrs reproduces the paper's Table I measurement on a
// single binary: where do the end-branch instructions sit?
func ExampleClassifyEndbrs() {
	spec := &funseeker.ProgramSpec{
		Name: "study",
		Lang: funseeker.LangCPP,
		Seed: 2,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1, 2}},
			{Name: "uses_setjmp", IndirectReturnCall: "setjmp"},
			{Name: "thrower", HasEH: true, NumLandingPads: 1, CallsPLT: []string{"__cxa_throw"}},
		},
	}
	cfg := funseeker.BuildConfig{
		Compiler: funseeker.GCC,
		Mode:     funseeker.ModeX64,
		Opt:      funseeker.O2,
	}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	bin, err := funseeker.Load(res.Stripped)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	dist, err := funseeker.ClassifyEndbrs(bin)
	if err != nil {
		fmt.Println("classify:", err)
		return
	}
	fmt.Printf("entries=%d indirect-return=%d exception=%d\n",
		dist.FuncEntry, dist.IndirectReturn, dist.Exception)
	// Output:
	// entries=4 indirect-return=1 exception=1
}

// ExampleIdentifyBTI shows the ARM BTI port of the algorithm.
func ExampleIdentifyBTI() {
	spec := &funseeker.ProgramSpec{
		Name: "armdemo",
		Lang: funseeker.LangC,
		Seed: 3,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1}},
			{Name: "worker", Static: true},
		},
	}
	res, err := funseeker.CompileBTI(spec, funseeker.BTIBuildConfig{Opt: funseeker.O2})
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	report, err := funseeker.IdentifyBTI(res.Image)
	if err != nil {
		fmt.Println("identify:", err)
		return
	}
	m := funseeker.Score(report.Entries, res.GT)
	fmt.Printf("found %d entries, recall %.0f%%\n", len(report.Entries), m.Recall())
	// Output:
	// found 3 entries, recall 100%
}
