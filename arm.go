package funseeker

import (
	"github.com/funseeker/funseeker/internal/armsynth"
	"github.com/funseeker/funseeker/internal/bticore"
	"github.com/funseeker/funseeker/internal/synth"
)

// ARM BTI support — the extension the paper's §VI identifies as
// promising future work. ARMv8.5 Branch Target Identification plays the
// ENDBR role on AArch64, with one improvement: the pad operand
// self-describes its legal predecessors (BTI c for calls, BTI j for
// jumps), so the FILTERENDBR analog needs no PLT or LSDA analysis.

// BTIBuildConfig is the ARM build configuration.
type BTIBuildConfig = armsynth.Config

// BTIBuildResult is one compiled AArch64 binary with ground truth.
type BTIBuildResult = armsynth.Result

// BTIReport is the ARM identification result.
type BTIReport = bticore.Report

// CompileBTI builds a BTI-enabled AArch64 binary from a program spec.
// The x86-specific spec features (PLT calls, indirect-return sites, C++
// EH, cold splitting) are ignored; BTI placement, direct and tail calls,
// switch tables, and data-referenced functions carry over.
func CompileBTI(spec *ProgramSpec, cfg BTIBuildConfig) (*BTIBuildResult, error) {
	return armsynth.Compile(spec, cfg)
}

// IdentifyBTI identifies function entries in an AArch64 BTI-enabled ELF
// image.
func IdentifyBTI(raw []byte) (*BTIReport, error) {
	return bticore.IdentifyBytes(raw)
}

// IdentifyBTIText runs the BTI algorithm over a raw .text image.
func IdentifyBTIText(text []byte, textAddr uint64) *BTIReport {
	return bticore.Identify(text, textAddr)
}

// compile-time check that ProgramSpec stays shared between back-ends.
var _ = func() *synth.ProgSpec { return (*ProgramSpec)(nil) }
