// Command bench runs the tracked performance series — the sweep
// microbenchmarks plus the identify/eval-matrix pipeline — with
// -benchmem semantics and writes BENCH_<date>.json so the numbers form
// a release-to-release trajectory. When a previous BENCH_*.json exists
// it prints a per-benchmark comparison and, with -check, fails if any
// ns/op regressed beyond -threshold.
//
// Usage:
//
//	bench [-out .] [-date YYYY-MM-DD] [-smoke] [-check] [-threshold 1.25]
//	      [-mbs-threshold 0.85] [-series regexp] [-cpuprofile f] [-memprofile f]
//
// -smoke runs every benchmark for a single iteration (harness
// correctness, not timing) — this is what CI uses. The JSON schema per
// result is {name, ns_op, b_op, allocs_op, mb_s}. -check also enforces
// the throughput floor (-mbs-threshold, new/old MB/s) and the parallel
// scaling curve: on hosts with >= 4 cores, BuildIndexParallel/workers=4
// pinned at gomaxprocs=4 must reach 1.8x sequential BuildIndex, and no
// workers=N row may fall below sequential anywhere.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/funseeker/funseeker"
	"github.com/funseeker/funseeker/internal/arm64"
	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/obs"
	"github.com/funseeker/funseeker/internal/ring"
	"github.com/funseeker/funseeker/internal/store"
	"github.com/funseeker/funseeker/internal/x86"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_op"`
	BPerOp      int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	MBPerS      float64 `json:"mb_s,omitempty"`
	// BinPerS is binaries analyzed per second, reported by the engine/*
	// series where one op processes the whole corpus.
	BinPerS float64 `json:"bin_s,omitempty"`
	// Gomaxprocs is set on rows that pin runtime.GOMAXPROCS for the
	// duration of the measurement (the gomaxprocs=N series); zero means
	// the process-wide value in the report header applied.
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
}

type report struct {
	Date   string `json:"date"`
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	// Gomaxprocs is the process-wide default: it applies to every row
	// whose own gomaxprocs field is absent. Rows in the gomaxprocs=N
	// series pin the scheduler for their measurement and record the
	// pinned value, overriding this default for that row only.
	Gomaxprocs int `json:"gomaxprocs"`
	// NumCPU records the host's core count so scaling rows (workers=N,
	// gomaxprocs=N) can be read honestly: pinning gomaxprocs=4 on a
	// 1-core host changes scheduling, not hardware parallelism.
	NumCPU  int      `json:"numcpu"`
	Results []result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	testing.Init()
	var (
		outDir       = flag.String("out", ".", "directory for BENCH_<date>.json")
		date         = flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the output file")
		smoke        = flag.Bool("smoke", false, "single-iteration run (harness correctness, not timing)")
		check        = flag.Bool("check", false, "exit non-zero on ns/op, MB/s, or parallel-scaling regressions vs the previous BENCH_*.json")
		threshold    = flag.Float64("threshold", 1.25, "regression threshold as a ratio (new/old ns_op)")
		mbsThreshold = flag.Float64("mbs-threshold", 0.85, "throughput floor as a ratio (new/old mb_s); rows below it regress")
		scale        = flag.Float64("scale", 0.5, "corpus function-count scale factor")
		programs     = flag.Int("programs", 2, "programs per suite in the corpus")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile covering every benchmark to this file")
		memprofile   = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
		seriesExpr   = flag.String("series", "", "regexp selecting which benchmark rows run (empty = all)")
		benchFlag    = flag.String("benchtime", "1s", "per-row sampling budget (go test -benchtime syntax); longer tightens noisy rows")
	)
	flag.Parse()
	var seriesRe *regexp.Regexp
	if *seriesExpr != "" {
		re, err := regexp.Compile(*seriesExpr)
		if err != nil {
			return fmt.Errorf("-series: %w", err)
		}
		seriesRe = re
	}
	benchtime := *benchFlag
	if *smoke {
		benchtime = "1x"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return err
	}

	rep := report{
		Date:       *date,
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		Gomaxprocs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "bench: corpus (scale=%g programs=%d)...\n", *scale, *programs)
	set, corpusBytes, err := buildCorpus(*scale, *programs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: %d binaries, %d bytes; benchtime=%s\n", len(set), corpusBytes, benchtime)

	for _, bm := range series(set, corpusBytes) {
		if seriesRe != nil && !seriesRe.MatchString(bm.name) {
			continue
		}
		if bm.gomaxprocs > 0 {
			runtime.GOMAXPROCS(bm.gomaxprocs)
		}
		r := testing.Benchmark(bm.fn)
		if bm.gomaxprocs > 0 {
			runtime.GOMAXPROCS(rep.Gomaxprocs)
		}
		res := result{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BPerOp:      r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Gomaxprocs:  bm.gomaxprocs,
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerS = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
		}
		// The engine/* series process the whole corpus per op, so their
		// ns/op converts directly to engine throughput in binaries/sec.
		if strings.HasPrefix(bm.name, "engine/") && res.NsPerOp > 0 {
			res.BinPerS = float64(len(set)) / (res.NsPerOp / 1e9)
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-40s %14.0f ns/op %12d B/op %8d allocs/op", res.Name, res.NsPerOp, res.BPerOp, res.AllocsPerOp)
		if res.MBPerS > 0 {
			fmt.Printf("  %10.2f MB/s", res.MBPerS)
		}
		if res.BinPerS > 0 {
			fmt.Printf("  %10.2f bin/s", res.BinPerS)
		}
		fmt.Println()
	}

	outPath := filepath.Join(*outDir, "BENCH_"+*date+".json")
	prev, prevPath, err := latestPrevious(*outDir, outPath)
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", outPath)

	var cmpErr error
	if prev == nil {
		fmt.Fprintln(os.Stderr, "bench: no previous BENCH_*.json to compare against")
	} else {
		cmpErr = compare(prev, prevPath, &rep, *threshold, *mbsThreshold, *check)
	}
	if *check {
		if err := checkScaling(&rep, *smoke); err != nil {
			return err
		}
	}
	return cmpErr
}

// checkScaling enforces the parallel scaling curve within one report:
// no workers=N row may fall below sequential BuildIndex (beyond noise),
// and on hosts with at least 4 cores the workers=4 row pinned at
// gomaxprocs=4 must reach 1.8x sequential throughput. Smoke runs are
// single-iteration and carry no timing signal, so they skip the check.
func checkScaling(rep *report, smoke bool) error {
	if smoke {
		fmt.Fprintln(os.Stderr, "bench: scaling check skipped (-smoke timing is not meaningful)")
		return nil
	}
	mbs := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		mbs[r.Name] = r.MBPerS
	}
	seq := mbs["x86/BuildIndex"]
	if seq <= 0 {
		fmt.Fprintln(os.Stderr, "bench: scaling check skipped (no x86/BuildIndex row)")
		return nil
	}
	// Same-binary benchmark noise on shared VMs runs ~10%; only flag a
	// parallel row as a collapse when it is clearly below sequential.
	const noise = 0.90
	for _, r := range rep.Results {
		if !strings.HasPrefix(r.Name, "x86/BuildIndexParallel/") || r.MBPerS <= 0 {
			continue
		}
		if r.MBPerS < seq*noise {
			return fmt.Errorf("scaling: %s at %.2f MB/s is below sequential BuildIndex %.2f MB/s", r.Name, r.MBPerS, seq)
		}
	}
	if rep.NumCPU < 4 {
		fmt.Fprintf(os.Stderr, "bench: 1.8x scaling target skipped (%d cores; needs >= 4)\n", rep.NumCPU)
		return nil
	}
	const target = 1.8
	name := "x86/BuildIndexParallel/workers=4/gomaxprocs=4"
	if par := mbs[name]; par > 0 && par < seq*target {
		return fmt.Errorf("scaling: %s at %.2f MB/s is %.2fx sequential (%.2f MB/s), want >= %.1fx",
			name, par, par/seq, seq, target)
	}
	return nil
}

type benchmark struct {
	name string
	fn   func(b *testing.B)
	// gomaxprocs, when > 0, pins runtime.GOMAXPROCS around this row's
	// measurement so the parallel series can be read as a scaling curve
	// independent of the machine the numbers were recorded on.
	gomaxprocs int
}

type benchCase struct {
	bin *funseeker.Binary
	gt  *funseeker.GroundTruth
	raw []byte
}

// buildCorpus mirrors the mixed corpus of bench_test.go: a few programs
// per suite across four representative build configurations.
func buildCorpus(scale float64, programs int) ([]benchCase, int, error) {
	opts := funseeker.CorpusOptions{Scale: scale, Seed: 424242, Programs: programs}
	configs := []funseeker.BuildConfig{
		{Compiler: funseeker.GCC, Mode: funseeker.ModeX64, Opt: funseeker.O2},
		{Compiler: funseeker.GCC, Mode: funseeker.ModeX86, Opt: funseeker.O0},
		{Compiler: funseeker.Clang, Mode: funseeker.ModeX64, PIE: true, Opt: funseeker.O3},
		{Compiler: funseeker.Clang, Mode: funseeker.ModeX86, Opt: funseeker.Os},
	}
	var set []benchCase
	bytes := 0
	for _, suite := range []funseeker.Suite{funseeker.SuiteCoreutils, funseeker.SuiteBinutils} {
		for _, spec := range funseeker.GenerateSuite(suite, opts) {
			for _, cfg := range configs {
				res, err := funseeker.Compile(spec, cfg)
				if err != nil {
					return nil, 0, fmt.Errorf("corpus: %w", err)
				}
				bin, err := funseeker.Load(res.Stripped)
				if err != nil {
					return nil, 0, fmt.Errorf("corpus: %w", err)
				}
				set = append(set, benchCase{bin: bin, gt: res.GT, raw: res.Stripped})
				bytes += len(res.Stripped)
			}
		}
	}
	return set, bytes, nil
}

// series is the tracked benchmark list. Names are stable across releases
// — the comparison joins on them.
func series(set []benchCase, corpusBytes int) []benchmark {
	const textLen = 1 << 20
	rng := rand.New(rand.NewSource(424242))
	text := x86.GenText(textLen, x86.Mode64, rng, 0)
	perBin := int64(corpusBytes / len(set))

	bms := []benchmark{
		{name: "x86/Decode", fn: func(b *testing.B) {
			b.SetBytes(textLen)
			b.ReportAllocs()
			var inst x86.Inst
			for i := 0; i < b.N; i++ {
				off := 0
				for off < len(text) {
					if err := x86.DecodeInto(text[off:], uint64(off), x86.Mode64, &inst); err != nil {
						off++
						continue
					}
					off += inst.Len
				}
			}
		}},
		{name: "x86/Sweep", fn: func(b *testing.B) {
			b.SetBytes(textLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				x86.LinearSweep(text, 0x401000, x86.Mode64, func(inst *x86.Inst) bool {
					n++
					return true
				})
				if n == 0 {
					b.Fatal("empty sweep")
				}
			}
		}},
		{name: "x86/BuildIndex", fn: func(b *testing.B) {
			b.SetBytes(textLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if idx := x86.BuildIndex(text, 0x401000, x86.Mode64); len(idx.Insts) == 0 {
					b.Fatal("empty index")
				}
			}
		}},
		// x86/Superset decodes at every byte offset (the length-memoized
		// superset disassembly); MB/s is per text byte, so the row reads
		// directly against x86/Sweep as the cost of superset coverage.
		// The generated text ends mid-instruction, so whole-text chain
		// viability is legitimately empty — assert on the memo instead.
		{name: "x86/Superset", fn: func(b *testing.B) {
			b.SetBytes(textLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if s := x86.BuildSuperset(text, 0x401000, x86.Mode64); s.LenAt(0) == 0 {
					b.Fatal("offset 0 did not decode")
				}
			}
		}},
	}
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		bms = append(bms, benchmark{name: fmt.Sprintf("x86/BuildIndexParallel/workers=%d", workers), fn: func(b *testing.B) {
			b.SetBytes(textLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if idx := x86.BuildIndexParallel(text, 0x401000, x86.Mode64, workers); len(idx.Insts) == 0 {
					b.Fatal("empty index")
				}
			}
		}})
	}
	// The gomaxprocs=N series re-runs the workers=4 parallel build with
	// the scheduler pinned, separating algorithmic speedup (exact-size
	// assembly vs append growth) from hardware parallelism.
	for _, procs := range []int{1, 2, 4} {
		procs := procs
		bms = append(bms, benchmark{
			name:       fmt.Sprintf("x86/BuildIndexParallel/workers=4/gomaxprocs=%d", procs),
			gomaxprocs: procs,
			fn: func(b *testing.B) {
				b.SetBytes(textLen)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if idx := x86.BuildIndexParallel(text, 0x401000, x86.Mode64, 4); len(idx.Insts) == 0 {
						b.Fatal("empty index")
					}
				}
			},
		})
	}
	atext := arm64.GenText(textLen, rand.New(rand.NewSource(424242)))
	bms = append(bms,
		benchmark{name: "arm64/Sweep", fn: func(b *testing.B) {
			b.SetBytes(int64(len(atext)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				for off := 0; off+4 <= len(atext); off += 4 {
					w := binary.LittleEndian.Uint32(atext[off:])
					if arm64.Decode(w, 0x401000+uint64(off)).Class == arm64.ClassBL {
						n++
					}
				}
				if n == 0 {
					b.Fatal("no calls decoded")
				}
			}
		}},
		benchmark{name: "arm64/BuildIndex", fn: func(b *testing.B) {
			b.SetBytes(int64(len(atext)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if idx := arm64.BuildIndex(atext, 0x401000); len(idx.Insts) == 0 {
					b.Fatal("empty index")
				}
			}
		}},
	)
	bms = append(bms,
		benchmark{name: "identify/Config4", fn: func(b *testing.B) {
			b.SetBytes(perBin)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := funseeker.IdentifyBinary(set[i%len(set)].bin, funseeker.Config4); err != nil {
					b.Fatal(err)
				}
			}
		}},
		benchmark{name: "identify/Config5", fn: func(b *testing.B) {
			b.SetBytes(perBin)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := funseeker.IdentifyBinary(set[i%len(set)].bin, funseeker.Config5); err != nil {
					b.Fatal(err)
				}
			}
		}},
		benchmark{name: "classify/Endbrs", fn: func(b *testing.B) {
			b.SetBytes(perBin)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := funseeker.ClassifyEndbrs(set[i%len(set)].bin); err != nil {
					b.Fatal(err)
				}
			}
		}},
		benchmark{name: "tools/FETCH", fn: func(b *testing.B) {
			b.SetBytes(perBin)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := funseeker.RunFETCH(set[i%len(set)].bin); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// engine/Throughput is cold corpus analysis: a fresh engine per op
		// pushes every binary through the bounded worker pool, so ns/op is
		// the end-to-end cost of one full corpus (load + sweep + identify).
		benchmark{name: "engine/Throughput", fn: func(b *testing.B) {
			b.SetBytes(int64(corpusBytes))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := engine.New(engine.Config{})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				errs := make(chan error, len(set))
				for _, c := range set {
					wg.Add(1)
					go func(raw []byte) {
						defer wg.Done()
						if _, err := eng.Analyze(context.Background(), raw, funseeker.Config4); err != nil {
							errs <- err
						}
					}(c.raw)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
		}},
		// engine/CacheHit measures the content-hash fast path: every
		// binary is pre-warmed, so each op is pure SHA-256 + LRU lookup.
		benchmark{name: "engine/CacheHit", fn: func(b *testing.B) {
			eng, err := engine.New(engine.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range set {
				if _, err := eng.Analyze(context.Background(), c.raw, funseeker.Config4); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(corpusBytes))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range set {
					res, err := eng.Analyze(context.Background(), c.raw, funseeker.Config4)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Cached {
						b.Fatal("cache miss on a pre-warmed binary")
					}
				}
			}
		}},
		// obs/HistogramObserve is the observability tax: one Observe on
		// the hot path of every analyze/stage measurement. It must stay
		// lock-free and allocation-free or the metrics layer shows up in
		// the sweep numbers it is supposed to measure.
		benchmark{name: "obs/HistogramObserve", fn: func(b *testing.B) {
			h := obs.NewRegistry().NewHistogram("bench_observe_seconds", "bench", obs.LatencyBuckets)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				d := 127 * time.Microsecond
				for pb.Next() {
					h.ObserveDuration(d)
				}
			})
			if n := h.Snapshot().Count; n == 0 {
				b.Fatal("no observations recorded")
			}
		}},
		// store/Put and store/Get are the persistent result tier's hot
		// paths: an append + index insert, and a ReadAt outside the lock.
		// Sized like real traffic — 34-byte cache keys, ~2KB JSON values.
		benchmark{name: "store/Put", fn: func(b *testing.B) {
			dir, err := os.MkdirTemp("", "funseeker-bench-store")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := store.Open(dir, store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			val := bytes.Repeat([]byte(`{"v":1,"entries":[4198400,4198464]}`), 60)
			key := make([]byte, 34)
			b.SetBytes(int64(len(val)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i))
				if err := st.Put(key, val); err != nil {
					b.Fatal(err)
				}
			}
		}},
		benchmark{name: "store/Get", fn: func(b *testing.B) {
			dir, err := os.MkdirTemp("", "funseeker-bench-store")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := store.Open(dir, store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			val := bytes.Repeat([]byte(`{"v":1,"entries":[4198400,4198464]}`), 60)
			const records = 4096
			key := make([]byte, 34)
			for i := 0; i < records; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i))
				if err := st.Put(key, val); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(val)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i%records))
				v, ok, err := st.Get(key)
				if err != nil || !ok || len(v) != len(val) {
					b.Fatalf("get %d: ok=%v err=%v", i, ok, err)
				}
			}
		}},
		// store/Compact measures the cold-segment rewrite: each iteration
		// rebuilds a store where every key was written twice (50% garbage)
		// and compacts it down to the newest generation.
		benchmark{name: "store/Compact", fn: func(b *testing.B) {
			val := bytes.Repeat([]byte(`{"v":1,"entries":[4198400,4198464]}`), 60)
			const records = 1024
			key := make([]byte, 34)
			b.SetBytes(int64(2 * records * len(val)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "funseeker-bench-compact")
				if err != nil {
					b.Fatal(err)
				}
				st, err := store.Open(dir, store.Options{SegmentBytes: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				for gen := 0; gen < 2; gen++ {
					for j := 0; j < records; j++ {
						binary.LittleEndian.PutUint64(key, uint64(j))
						if err := st.Put(key, val); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StartTimer()
				res, err := st.Compact()
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if res.ReclaimedBytes <= 0 {
					b.Fatalf("compaction reclaimed %d bytes", res.ReclaimedBytes)
				}
				st.Close()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		}},
		// ring/Lookup is the router's per-request cost: one SHA-256 of a
		// 32-byte key plus a binary search over 16×512 vnode points.
		benchmark{name: "ring/Lookup", fn: func(b *testing.B) {
			r := ring.New(0)
			for i := 0; i < 16; i++ {
				r.Add(fmt.Sprintf("http://replica-%d:8745", i))
			}
			key := make([]byte, 32)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i))
				if _, ok := r.Lookup(key); !ok {
					b.Fatal("empty ring")
				}
			}
		}},
		benchmark{name: "evalmatrix/shared-context", fn: func(b *testing.B) {
			b.SetBytes(int64(corpusBytes))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, c := range set {
					ctx := funseeker.NewContext(c.bin)
					if _, err := funseeker.ClassifyEndbrsWithContext(ctx); err != nil {
						b.Fatal(err)
					}
					for _, opts := range []funseeker.Options{
						funseeker.Config1, funseeker.Config2, funseeker.Config3,
						funseeker.Config4, funseeker.Config5,
					} {
						if _, err := funseeker.IdentifyWithContext(ctx, opts); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := funseeker.RunFETCHWithContext(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	)
	return bms
}

// latestPrevious finds the lexicographically latest BENCH_*.json in dir,
// excluding the file about to be written.
func latestPrevious(dir, exclude string) (*report, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if sameFile(matches[i], exclude) {
			continue
		}
		data, err := os.ReadFile(matches[i])
		if err != nil {
			return nil, "", err
		}
		var rep report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, "", fmt.Errorf("%s: %w", matches[i], err)
		}
		return &rep, matches[i], nil
	}
	return nil, "", nil
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// compare prints a per-benchmark delta table vs prev and, in check mode,
// returns an error if any ns/op regressed beyond threshold or any
// throughput row fell below mbsThreshold of its previous MB/s. The two
// axes overlap for fixed-size rows but diverge for corpus rows, where a
// corpus-size change moves ns/op without moving MB/s — throughput is the
// comparison that survives re-parameterization.
func compare(prev *report, prevPath string, cur *report, threshold, mbsThreshold float64, check bool) error {
	old := make(map[string]result, len(prev.Results))
	for _, r := range prev.Results {
		old[r.Name] = r
	}
	fmt.Fprintf(os.Stderr, "bench: comparing against %s (ns/op threshold %.2fx, MB/s floor %.2fx)\n",
		prevPath, threshold, mbsThreshold)
	var regressed []string
	for _, r := range cur.Results {
		o, ok := old[r.Name]
		if !ok || o.NsPerOp <= 0 {
			fmt.Printf("%-40s (new)\n", r.Name)
			continue
		}
		ratio := r.NsPerOp / o.NsPerOp
		mark := ""
		if ratio > threshold {
			mark = "  REGRESSION"
			regressed = append(regressed, r.Name)
		}
		line := fmt.Sprintf("%-40s %8.2fx ns/op", r.Name, ratio)
		if o.MBPerS > 0 && r.MBPerS > 0 {
			mbsRatio := r.MBPerS / o.MBPerS
			line += fmt.Sprintf(" %8.2fx MB/s", mbsRatio)
			if mbsRatio < mbsThreshold && mark == "" {
				mark = "  REGRESSION(MB/s)"
				regressed = append(regressed, r.Name)
			}
		}
		fmt.Printf("%s vs %s%s\n", line, prev.Date, mark)
	}
	if check && len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.2fx ns/op or below %.2fx MB/s: %v",
			len(regressed), threshold, mbsThreshold, regressed)
	}
	return nil
}
