// Command synthgen materializes the synthetic CET-enabled benchmark
// corpus to disk: for every program × build configuration it writes the
// stripped binary, the unstripped binary, and a ground-truth JSON
// sidecar.
//
// Usage:
//
//	synthgen -out dataset/ [-suites coreutils,binutils,spec]
//	         [-scale 1.0] [-seed 2022] [-configs all|gcc-x86-64-nopie-O2,...]
//	         [-nocet]
//
// With -nocet every selected configuration builds without CET markers
// (as if -fcf-protection were absent): the FDE-only workload for
// FunSeeker configuration ⑤. Config directory names gain a "-nocet"
// suffix.
//
// Layout produced:
//
//	dataset/<suite>/<config>/<program>            (stripped)
//	dataset/<suite>/<config>/<program>.unstripped
//	dataset/<suite>/<config>/<program>.gt.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/funseeker/funseeker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "", "output directory (required)")
		suites  = flag.String("suites", "coreutils,binutils,spec", "comma-separated suites")
		scale   = flag.Float64("scale", 1.0, "function-count scale factor")
		seed    = flag.Int64("seed", 2022, "generation seed")
		configs = flag.String("configs", "all", "comma-separated config names or 'all'")
		progs   = flag.Int("programs", 0, "override programs per suite (0 = paper counts)")
		noCET   = flag.Bool("nocet", false, "build without CET markers (FDE-only corpus for config 5)")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	suiteOf := map[string]funseeker.Suite{
		"coreutils": funseeker.SuiteCoreutils,
		"binutils":  funseeker.SuiteBinutils,
		"spec":      funseeker.SuiteSPEC,
	}
	var selSuites []funseeker.Suite
	for _, name := range strings.Split(*suites, ",") {
		s, ok := suiteOf[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("unknown suite %q", name)
		}
		selSuites = append(selSuites, s)
	}

	all := funseeker.AllBuildConfigs()
	var selConfigs []funseeker.BuildConfig
	if *configs == "all" {
		selConfigs = all
	} else {
		byName := make(map[string]funseeker.BuildConfig, len(all))
		for _, c := range all {
			byName[c.String()] = c
		}
		for _, name := range strings.Split(*configs, ",") {
			c, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown config %q (want e.g. %q)", name, all[0].String())
			}
			selConfigs = append(selConfigs, c)
		}
	}
	if *noCET {
		for i := range selConfigs {
			selConfigs[i].NoCET = true
		}
	}

	opts := funseeker.CorpusOptions{Scale: *scale, Seed: *seed, Programs: *progs}
	written := 0
	for _, suite := range selSuites {
		specs := funseeker.GenerateSuite(suite, opts)
		for _, cfg := range selConfigs {
			dir := filepath.Join(*out, suiteDirName(suite), cfg.String())
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			for _, spec := range specs {
				res, err := funseeker.Compile(spec, cfg)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", spec.Name, cfg, err)
				}
				base := filepath.Join(dir, spec.Name)
				if err := os.WriteFile(base, res.Stripped, 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(base+".unstripped", res.Image, 0o755); err != nil {
					return err
				}
				if err := res.GT.Save(base + ".gt.json"); err != nil {
					return err
				}
				written++
			}
		}
	}
	fmt.Printf("synthgen: wrote %d binaries under %s\n", written, *out)
	return nil
}

func suiteDirName(s funseeker.Suite) string {
	switch s {
	case funseeker.SuiteCoreutils:
		return "coreutils"
	case funseeker.SuiteBinutils:
		return "binutils"
	default:
		return "spec"
	}
}
