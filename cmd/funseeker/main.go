// Command funseeker identifies function entry points in CET-enabled
// x86-64 and BTI-enabled AArch64 ELF binaries, dispatching on the ELF
// header.
//
// Usage:
//
//	funseeker [-config 4] [-gt truth.json] [-stats] [-v] <binary>
//	funseeker [-config 4] [-jobs N] [-json] <binary|dir> ...
//
// By default the full algorithm (configuration ④) runs and the entry
// addresses are printed one per line. Configuration ⑤ additionally
// fuses .eh_frame FDE evidence, which also recovers functions on
// binaries built without CET markers. With -gt the result is scored
// against a ground-truth sidecar produced by synthgen. With -stats the
// intermediate set sizes and filter counters are reported.
//
// Given several paths — or a directory, which is walked for ELF files —
// funseeker switches to corpus mode: the binaries are analyzed on a
// bounded worker pool (-jobs, default GOMAXPROCS) and one result per
// binary is emitted in input order, as JSON lines with -json. Per-binary
// failures are reported on stderr without stopping the batch. In corpus
// mode -stats additionally prints a per-stage latency summary table
// (count, p50, p90, p99, total for sweep, eh-parse, filter, tail-call,
// queue wait, and end-to-end analyze) on stderr at exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/funseeker/funseeker"
	"github.com/funseeker/funseeker/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "funseeker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configN  = flag.Int("config", 4, "algorithm configuration 1-5 (Table II; 5 fuses .eh_frame evidence)")
		gtPath   = flag.String("gt", "", "score against this ground-truth JSON")
		stats    = flag.Bool("stats", false, "print intermediate set statistics")
		quiet    = flag.Bool("quiet", false, "suppress the entry listing")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		superset = flag.Bool("superset", false, "additionally scan all byte offsets for end branches (data-in-text robustness)")
		verbose  = flag.Bool("v", false, "report analysis degradations (e.g. unreadable exception metadata)")
		dist     = flag.Bool("endbr-dist", false, "print the end-branch location distribution (Table I study)")
		jobs     = flag.Int("jobs", 0, "max concurrent analyses in corpus mode (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: funseeker [flags] <binary|dir> ...")
	}

	var opts funseeker.Options
	switch *configN {
	case 1:
		opts = funseeker.Config1
	case 2:
		opts = funseeker.Config2
	case 3:
		opts = funseeker.Config3
	case 4:
		opts = funseeker.Config4
	case 5:
		opts = funseeker.Config5
	default:
		return fmt.Errorf("-config must be 1-5, got %d", *configN)
	}
	opts.SupersetEndbrScan = *superset

	// Several paths, or a directory, switch to engine-backed corpus mode.
	if flag.NArg() > 1 || isDir(flag.Arg(0)) {
		if *gtPath != "" || *dist {
			return fmt.Errorf("-gt and -endbr-dist apply to a single binary")
		}
		return runCorpus(flag.Args(), opts, *configN, *jobs, *jsonOut, *quiet, *stats, *verbose)
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	bin, err := funseeker.Load(raw)
	if err != nil {
		return err
	}
	bin.Path = flag.Arg(0)
	if !bin.MarkersEnabled() {
		if bin.Arch == funseeker.ArchAArch64 {
			fmt.Fprintln(os.Stderr, "funseeker: warning: binary is not marked BTI-enabled (no BTI property note)")
		} else {
			fmt.Fprintln(os.Stderr, "funseeker: warning: binary is not marked CET-enabled (no IBT property note)")
		}
	}
	if *dist {
		if bin.Arch == funseeker.ArchAArch64 {
			return fmt.Errorf("-endbr-dist is an x86 study (Table I); not supported for aarch64")
		}
		d, err := funseeker.ClassifyEndbrs(bin)
		if err != nil {
			return err
		}
		total := d.Total()
		if total == 0 {
			fmt.Println("no end-branch instructions found")
			return nil
		}
		fmt.Printf("end branches: %d\n", total)
		fmt.Printf("  function entries:      %6d (%.2f%%)\n", d.FuncEntry, 100*float64(d.FuncEntry)/float64(total))
		fmt.Printf("  indirect-return sites: %6d (%.2f%%)\n", d.IndirectReturn, 100*float64(d.IndirectReturn)/float64(total))
		fmt.Printf("  exception pads:        %6d (%.2f%%)\n", d.Exception, 100*float64(d.Exception)/float64(total))
		return nil
	}

	report, err := funseeker.IdentifyBinary(bin, opts)
	if err != nil {
		return err
	}
	if *verbose {
		for _, w := range report.Warnings {
			fmt.Fprintln(os.Stderr, "funseeker: warning:", w)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Binary  string   `json:"binary"`
			Arch    string   `json:"arch"`
			Config  int      `json:"config"`
			Entries []uint64 `json:"entries"`
			Endbrs  int      `json:"endbrs"`
			Calls   int      `json:"call_targets"`
			Jumps   int      `json:"jump_targets"`
			Tails   int      `json:"tail_call_targets"`
		}{
			Binary:  flag.Arg(0),
			Arch:    report.Arch,
			Config:  *configN,
			Entries: report.Entries,
			Endbrs:  len(report.Endbrs),
			Calls:   len(report.CallTargets),
			Jumps:   len(report.JumpTargets),
			Tails:   len(report.TailCallTargets),
		})
	}
	if !*quiet {
		for _, e := range report.Entries {
			fmt.Printf("%#x\n", e)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "arch:              %s\n", report.Arch)
		fmt.Fprintf(os.Stderr, "endbrs:            %d\n", len(report.Endbrs))
		fmt.Fprintf(os.Stderr, "call targets:      %d\n", len(report.CallTargets))
		fmt.Fprintf(os.Stderr, "jump targets:      %d\n", len(report.JumpTargets))
		fmt.Fprintf(os.Stderr, "tail-call targets: %d\n", len(report.TailCallTargets))
		fmt.Fprintf(os.Stderr, "filtered (indirect-return): %d\n", report.FilteredIndirectReturn)
		fmt.Fprintf(os.Stderr, "filtered (landing pads):    %d\n", report.FilteredLandingPads)
		fmt.Fprintf(os.Stderr, "entries:           %d\n", len(report.Entries))
	}
	if *gtPath != "" {
		gt, err := funseeker.LoadGroundTruth(*gtPath)
		if err != nil {
			return err
		}
		m := funseeker.Score(report.Entries, gt)
		fmt.Fprintf(os.Stderr, "precision %.3f%%  recall %.3f%%  (tp=%d fp=%d fn=%d)\n",
			m.Precision(), m.Recall(), m.TP, m.FP, m.FN)
	}
	return nil
}

func isDir(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

// corpusLine is one JSONL record of corpus mode, mirroring the
// single-binary -json shape plus engine metadata.
type corpusLine struct {
	Binary  string   `json:"binary"`
	Arch    string   `json:"arch,omitempty"`
	Config  int      `json:"config"`
	SHA256  string   `json:"sha256"`
	Cached  bool     `json:"cached"`
	Entries []uint64 `json:"entries"`
	Endbrs  int      `json:"endbrs"`
	Calls   int      `json:"call_targets"`
	Jumps   int      `json:"jump_targets"`
	Tails   int      `json:"tail_call_targets"`
	Error   string   `json:"error,omitempty"`
}

// runCorpus analyzes every named binary (directories are walked for ELF
// files) on the engine's worker pool, emitting results in input order.
// Per-binary failures go to stderr — and into the JSONL stream with an
// "error" field — without aborting the batch. Ctrl-C cancels cleanly:
// in-flight sweeps stop at the next cancellation check.
func runCorpus(args []string, opts funseeker.Options, configN, jobs int, jsonOut, quiet, stats, verbose bool) error {
	paths, err := engine.Expand(args)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no ELF files found under %v", args)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng, err := engine.New(engine.Config{Jobs: jobs})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	var failures int
	err = eng.Files(ctx, paths, opts, func(fr engine.FileResult) error {
		if fr.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "funseeker: %s: %v\n", fr.Path, fr.Err)
			if jsonOut {
				return enc.Encode(corpusLine{Binary: fr.Path, Config: configN, Error: fr.Err.Error()})
			}
			return nil
		}
		rep := fr.Result.Report
		if verbose {
			for _, w := range rep.Warnings {
				fmt.Fprintf(os.Stderr, "funseeker: %s: warning: %s\n", fr.Path, w)
			}
		}
		if jsonOut {
			return enc.Encode(corpusLine{
				Binary:  fr.Path,
				Arch:    rep.Arch,
				Config:  configN,
				SHA256:  fr.Result.SHA256,
				Cached:  fr.Result.Cached,
				Entries: rep.Entries,
				Endbrs:  len(rep.Endbrs),
				Calls:   len(rep.CallTargets),
				Jumps:   len(rep.JumpTargets),
				Tails:   len(rep.TailCallTargets),
			})
		}
		if !quiet {
			for _, e := range rep.Entries {
				fmt.Printf("%s %#x\n", fr.Path, e)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if stats {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "binaries analyzed: %d (%d failed, %d cache hits)\n",
			st.Analyzed, st.Failures, st.CacheHits)
		fmt.Fprintf(os.Stderr, "bytes analyzed:    %d\n", st.BytesAnalyzed)
		fmt.Fprint(os.Stderr, eng.StageLatencyTable())
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d binaries failed", failures, len(paths))
	}
	return nil
}
