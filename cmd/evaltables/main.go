// Command evaltables regenerates the FunSeeker paper's evaluation
// artifacts — Table I (end-branch locations), Figure 3 (function property
// overlap), Table II (ablation configurations), Table III (tool
// comparison with timing), and the §V-C failure analysis — over the
// synthetic corpus.
//
// Usage:
//
//	evaltables [-scale 1.0] [-seed 2022] [-workers N] [-table all] [-out report.txt]
//
// -table selects one artifact: 1, 2, 3, fig3, failures, or all.
// -scale shrinks the per-program function counts for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/eval"
	"github.com/funseeker/funseeker/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaltables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Float64("scale", 1.0, "function-count scale factor (1.0 = paper-sized corpus)")
		seed     = flag.Int64("seed", 2022, "corpus generation seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		table    = flag.String("table", "all", "artifact to print: 1, 2, 3, fig3, failures, manual-endbr, bti, superset, all")
		out      = flag.String("out", "", "also write the report to this file")
		programs = flag.Int("programs", 0, "override programs per suite (0 = paper counts)")
	)
	flag.Parse()

	opts := corpus.Options{Scale: *scale, Seed: *seed, Programs: *programs}
	cases := eval.Cases(corpus.AllSuites(), synth.AllConfigs(), opts)

	if *table == "superset" {
		// Regenerate the corpus with inline data blobs: the scenario the
		// superset scan exists for.
		dOpts := opts
		dOpts.DataInText = 0.15
		dCases := eval.Cases(corpus.AllSuites(), synth.AllConfigs(), dOpts)
		fmt.Fprintf(os.Stderr, "evaltables: superset ablation over %d data-in-text binaries...\n", len(dCases))
		res, err := eval.RunSupersetAblation(dCases, *workers)
		if err != nil {
			return err
		}
		report := res.Render()
		fmt.Print(report)
		if *out != "" {
			return os.WriteFile(*out, []byte(report), 0o644)
		}
		return nil
	}

	if *table == "bti" {
		fmt.Fprintf(os.Stderr, "evaltables: ARM BTI experiment...\n")
		res, err := eval.RunBTI(corpus.AllSuites(), opts, *workers)
		if err != nil {
			return err
		}
		report := res.Render()
		fmt.Print(report)
		if *out != "" {
			return os.WriteFile(*out, []byte(report), 0o644)
		}
		return nil
	}

	if *table == "manual-endbr" {
		fmt.Fprintf(os.Stderr, "evaltables: manual-endbr ablation over %d binary pairs...\n", len(cases))
		res, err := eval.RunManualEndbrAblation(cases, *workers)
		if err != nil {
			return err
		}
		report := res.Render()
		fmt.Print(report)
		if *out != "" {
			return os.WriteFile(*out, []byte(report), 0o644)
		}
		return nil
	}
	fmt.Fprintf(os.Stderr, "evaltables: %d binaries to build and analyze...\n", len(cases))
	start := time.Now()
	res, err := eval.RunAll(cases, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "evaltables: done in %s\n", time.Since(start).Round(time.Millisecond))

	var report string
	switch *table {
	case "1":
		report = res.RenderTableI()
	case "2":
		report = res.RenderTableII()
	case "3":
		report = res.RenderTableIII()
	case "fig3":
		report = res.RenderFigure3()
	case "failures":
		report = res.RenderFailures()
	case "all":
		report = res.RenderAll()
	default:
		return fmt.Errorf("unknown -table %q", *table)
	}
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			return err
		}
	}
	return nil
}
