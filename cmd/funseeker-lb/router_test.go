package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// fakeBackend is a minimal funseekerd stand-in that records which
// bodies it saw and answers /v1/analyze with a canned JSON carrying
// its own name — enough to observe routing without running analyses.
type fakeBackend struct {
	name string
	ts   *httptest.Server

	mu     sync.Mutex
	bodies []string // SHA-256-free: the raw body text, tests use short tags
	downMu sync.Mutex
	down   bool
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		fb.mu.Lock()
		fb.bodies = append(fb.bodies, string(raw))
		fb.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%q}`, fb.name)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintf(w, `{"summary":true,"backend":%q}`+"\n", fb.name)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fb.downMu.Lock()
		down := fb.down
		fb.downMu.Unlock()
		if down {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) setDown(down bool) {
	fb.downMu.Lock()
	fb.down = down
	fb.downMu.Unlock()
}

func (fb *fakeBackend) seen() int {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return len(fb.bodies)
}

func newTestRouter(t *testing.T, backends []*fakeBackend, mutate func(*routerConfig)) *httptest.Server {
	t.Helper()
	var urls []string
	for _, fb := range backends {
		urls = append(urls, fb.ts.URL)
	}
	cfg := routerConfig{backends: urls}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := newRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.handler())
	t.Cleanup(ts.Close)
	// Stash for tests that drive health checks directly.
	testRouters[ts] = rt
	return ts
}

var testRouters = map[*httptest.Server]*router{}

func analyzeVia(t *testing.T, url string, body string) (string, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		Backend string `json:"backend"`
	}
	json.Unmarshal(raw, &out)
	return out.Backend, resp.StatusCode
}

// TestRouteDeterministicAndSharded: the same body always lands on the
// same backend, and many distinct bodies spread across all of them.
func TestRouteDeterministicAndSharded(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c"),
	}
	ts := newTestRouter(t, backends, nil)

	owner, status := analyzeVia(t, ts.URL, "binary-zero")
	if status != http.StatusOK || owner == "" {
		t.Fatalf("first route: status %d owner %q", status, owner)
	}
	for i := 0; i < 5; i++ {
		again, _ := analyzeVia(t, ts.URL, "binary-zero")
		if again != owner {
			t.Fatalf("same body routed to %q then %q", owner, again)
		}
	}

	hit := map[string]int{}
	for i := 0; i < 60; i++ {
		b, status := analyzeVia(t, ts.URL, fmt.Sprintf("binary-%d", i))
		if status != http.StatusOK {
			t.Fatalf("route %d: status %d", i, status)
		}
		hit[b]++
	}
	if len(hit) != 3 {
		t.Fatalf("60 distinct bodies used %d backends (%v), want all 3", len(hit), hit)
	}
}

// TestFailoverOnDeadBackend: killing a replica reroutes its keys to a
// ring successor without an error surfacing to the client, and the
// survivors keep their keys (minimal disruption, end to end).
func TestFailoverOnDeadBackend(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c"),
	}
	ts := newTestRouter(t, backends, nil)

	byName := map[string]*fakeBackend{}
	for _, fb := range backends {
		byName[fb.name] = fb
	}

	// Map a few keys to owners while everyone is up.
	owners := map[string]string{}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner, _ := analyzeVia(t, ts.URL, key)
		owners[key] = owner
	}

	// Kill one replica's listener outright: connection-level failure.
	var victim *fakeBackend
	for _, fb := range backends {
		if fb.name == owners["key-0"] {
			victim = fb
		}
	}
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	for key, prev := range owners {
		got, status := analyzeVia(t, ts.URL, key)
		if status != http.StatusOK {
			t.Fatalf("key %q after kill: status %d", key, status)
		}
		if prev != victim.name && got != prev {
			t.Fatalf("survivor-owned key %q moved %q -> %q", key, prev, got)
		}
		if prev == victim.name && (got == victim.name || got == "") {
			t.Fatalf("victim-owned key %q still answered by %q", key, got)
		}
	}
}

// TestHealthProbeMovesRing: a failing health probe removes the backend
// from the ring; a passing one restores it — and with it, the exact
// original key placement.
func TestHealthProbeMovesRing(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c"),
	}
	ts := newTestRouter(t, backends, nil)
	rt := testRouters[ts]

	owners := map[string]string{}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("hp-%d", i)
		owners[key], _ = analyzeVia(t, ts.URL, key)
	}

	backends[1].setDown(true)
	rt.checkHealth()
	if n := rt.ring.Len(); n != 2 {
		t.Fatalf("ring has %d nodes after probe failure, want 2", n)
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("hp-%d", i)
		got, status := analyzeVia(t, ts.URL, key)
		if status != http.StatusOK || got == backends[1].name {
			t.Fatalf("key %q routed to downed backend (status %d, got %q)", key, status, got)
		}
	}

	backends[1].setDown(false)
	rt.checkHealth()
	if n := rt.ring.Len(); n != 3 {
		t.Fatalf("ring has %d nodes after recovery, want 3", n)
	}
	for key, prev := range owners {
		got, _ := analyzeVia(t, ts.URL, key)
		if got != prev {
			t.Fatalf("key %q owner %q != original %q after recovery", key, got, prev)
		}
	}

	// /lb/nodes reflects the state.
	resp, err := http.Get(ts.URL + "/lb/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var nodes struct {
		Nodes []struct {
			Backend string `json:"backend"`
			Healthy bool   `json:"healthy"`
		} `json:"nodes"`
		RingNodes []string `json:"ring_nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nodes.Nodes) != 3 || len(nodes.RingNodes) != 3 {
		t.Fatalf("/lb/nodes = %+v", nodes)
	}
	for _, n := range nodes.Nodes {
		if !n.Healthy {
			t.Fatalf("backend %q still marked unhealthy", n.Backend)
		}
	}
}

// TestBatchRoundRobin: batches spread across healthy replicas and skip
// downed ones.
func TestBatchRoundRobin(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "a"), newFakeBackend(t, "b"),
	}
	ts := newTestRouter(t, backends, nil)
	rt := testRouters[ts]

	post := func() string {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/x-tar", bytes.NewReader([]byte("tar-ish")))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var out struct {
			Backend string `json:"backend"`
		}
		json.Unmarshal(raw, &out)
		return out.Backend
	}
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		seen[post()]++
	}
	if seen["a"] != 3 || seen["b"] != 3 {
		t.Fatalf("round-robin split = %v, want 3/3", seen)
	}

	backends[0].setDown(true)
	rt.checkHealth()
	for i := 0; i < 4; i++ {
		if b := post(); b != "b" {
			t.Fatalf("batch routed to %q with a down", b)
		}
	}
}

// TestNoHealthyBackends: everything down yields 503, counted as
// unrouted.
func TestNoHealthyBackends(t *testing.T) {
	backends := []*fakeBackend{newFakeBackend(t, "a")}
	ts := newTestRouter(t, backends, nil)
	rt := testRouters[ts]

	backends[0].setDown(true)
	rt.checkHealth()
	_, status := analyzeVia(t, ts.URL, "anything")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	resp, _ := http.Post(ts.URL+"/v1/batch", "application/x-tar", strings.NewReader("x"))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch status = %d, want 503", resp.StatusCode)
	}
	if rt.unrouted.Value() != 2 {
		t.Fatalf("unrouted = %d, want 2", rt.unrouted.Value())
	}
}

// TestBatchFullDuplexThroughRouter: a batch whose upload is still in
// flight when the first NDJSON record streams back must reach the
// backend intact. The upload is larger than the HTTP/1 server's
// post-response body-drain window (256 KiB), so if the router hop ever
// stops being full duplex, the server's drain races the transport's
// body forwarding and the backend sees a truncated archive.
func TestBatchFullDuplexThroughRouter(t *testing.T) {
	const (
		firstChunk = 64 << 10
		restChunk  = 2 << 20
	)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
			t.Errorf("backend EnableFullDuplex: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		buf := make([]byte, 32<<10)
		var total int
		sentFirst := false
		for {
			n, err := r.Body.Read(buf)
			total += n
			// First record goes out while the uploader still holds most
			// of the archive: this is what arms the race at the router.
			if !sentFirst && total > 0 {
				sentFirst = true
				fmt.Fprintln(w, `{"index":0}`)
				fl.Flush()
			}
			if err != nil {
				if err != io.EOF {
					fmt.Fprintf(w, `{"summary":true,"got_bytes":%d,"read_err":%q}`+"\n", total, err)
					return
				}
				break
			}
		}
		fmt.Fprintf(w, `{"summary":true,"got_bytes":%d}`+"\n", total)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "{}")
	})
	backend := httptest.NewServer(mux)
	t.Cleanup(backend.Close)

	rt, err := newRouter(routerConfig{backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.handler())
	t.Cleanup(ts.Close)

	pr, pw := io.Pipe()
	gotFirst := make(chan struct{})
	writeErr := make(chan error, 1)
	go func() {
		if _, err := pw.Write(bytes.Repeat([]byte{0xAB}, firstChunk)); err != nil {
			writeErr <- err
			return
		}
		// Hold the rest of the upload until the first record has come
		// back through the router, so the stream is genuinely duplex.
		<-gotFirst
		if _, err := pw.Write(bytes.Repeat([]byte{0xCD}, restChunk)); err != nil {
			writeErr <- err
			return
		}
		writeErr <- pw.Close()
	}()

	// A deadline, not a hang: the known failure mode here is a deadlock
	// (the server's body drain waits on an upload gated on the first
	// record it is blocking), so a regression must fail, not stall.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-tar")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("batch request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var summary struct {
		Summary  bool   `json:"summary"`
		GotBytes int    `json:"got_bytes"`
		ReadErr  string `json:"read_err"`
	}
	sawSummary := false
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Summary {
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		// First per-item record: release the rest of the upload.
		select {
		case <-gotFirst:
		default:
			close(gotFirst)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("uploading while stream was open: %v", err)
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary record")
	}
	if summary.ReadErr != "" {
		t.Fatalf("backend body read failed mid-batch: %s (got %d bytes)", summary.ReadErr, summary.GotBytes)
	}
	if want := firstChunk + restChunk; summary.GotBytes != want {
		t.Fatalf("backend saw %d bytes, want %d — upload corrupted across the router hop", summary.GotBytes, want)
	}
}

// TestBatchUploaderFailureKeepsBackendHealthy: a client that dies
// mid-upload makes the forward fail, but the failure is the client's —
// the backend must keep its ring slot, or every flaky uploader remaps
// ~1/N of the key space.
func TestBatchUploaderFailureKeepsBackendHealthy(t *testing.T) {
	forwardDone := make(chan error, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		// Read the whole body before answering, so the router's Do is
		// still in flight when the uploader aborts.
		_, err := io.Copy(io.Discard, r.Body)
		forwardDone <- err
		fmt.Fprintln(w, `{"summary":true}`)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "{}")
	})
	backend := httptest.NewServer(mux)
	t.Cleanup(backend.Close)

	rt, err := newRouter(routerConfig{backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.handler())
	t.Cleanup(ts.Close)

	pr, pw := io.Pipe()
	go func() {
		pw.Write(bytes.Repeat([]byte{0x11}, 64<<10))
		pw.CloseWithError(errors.New("uploader crashed"))
	}()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-tar")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// Depending on timing the router may answer before the client
		// transport notices its own body error; either way the response
		// must not be a success.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("status = %d, want an error for an aborted upload", resp.StatusCode)
		}
	}

	// Wait for the aborted forward to reach the backend, then give the
	// router's error path time to (wrongly) demote it.
	select {
	case <-forwardDone:
	case <-time.After(5 * time.Second):
		t.Fatal("forward never reached the backend")
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if n := rt.ring.Len(); n != 1 {
			t.Fatalf("ring has %d nodes after an uploader failure, want 1 — healthy backend was demoted", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := rt.unrouted.Value(); v != 0 {
		t.Fatalf("unrouted = %d after an uploader failure, want 0", v)
	}

	// And the backend still serves: a clean batch goes straight through.
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-tar", strings.NewReader("ok"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up batch status = %d, want 200", resp.StatusCode)
	}
}

// TestRelayVerbatim: the router relays a backend's status, body, and
// the headers that matter (Retry-After from a shedding replica) without
// rewriting them, and forwards the full binary body. The real
// replicas-behind-router path runs in CI's cluster smoke job.
func TestRelayVerbatim(t *testing.T) {
	raw := realELF(t)

	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/analyze":
			body, _ := io.ReadAll(r.Body)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error":"overloaded","got_bytes":%d}`, len(body))
		case "/v1/healthz":
			fmt.Fprintln(w, "{}")
		}
	}))
	t.Cleanup(backend.Close)

	rt, err := newRouter(routerConfig{backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want the backend's 429 relayed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want relayed 7", resp.Header.Get("Retry-After"))
	}
	var out struct {
		GotBytes int `json:"got_bytes"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.GotBytes != len(raw) {
		t.Fatalf("backend saw %d bytes, want %d (body %s)", out.GotBytes, len(raw), body)
	}
}

// realELF compiles one small CET binary.
var realELFOnce = sync.OnceValues(func() ([]byte, error) {
	specs := corpus.Generate(corpus.Coreutils, corpus.Options{Scale: 0.1, Seed: 3, Programs: 1})
	if len(specs) == 0 {
		return nil, fmt.Errorf("no specs")
	}
	res, err := synth.Compile(specs[0], synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	if err != nil {
		return nil, err
	}
	return res.Stripped, nil
})

func realELF(t *testing.T) []byte {
	t.Helper()
	raw, err := realELFOnce()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
