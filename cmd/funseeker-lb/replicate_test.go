package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// replicaBackend is a funseekerd stand-in with a real (in-memory)
// result store: /v1/analyze writes through and names the key in the
// response header, /v1/result and /v1/keys expose the replica-transfer
// surface, and a compute counter distinguishes warm serves from
// recomputation — the thing warm failover is supposed to prevent.
type replicaBackend struct {
	name string
	ts   *httptest.Server

	mu       sync.Mutex
	store    map[string][]byte
	computes int
	down     bool
}

// fakeStoreKey derives the 34-byte store key funseekerd would: the
// binary's SHA-256 plus two option bytes (fixed here — the tests always
// analyze with default options).
func fakeStoreKey(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]) + "0400"
}

func newReplicaBackend(t *testing.T, name string) *replicaBackend {
	t.Helper()
	rb := &replicaBackend{name: name, store: map[string][]byte{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		key := fakeStoreKey(raw)
		rb.mu.Lock()
		_, warm := rb.store[key]
		if !warm {
			rb.computes++
			rb.store[key] = []byte(fmt.Sprintf(`{"backend":%q,"body":%q}`, rb.name, raw))
		}
		rb.mu.Unlock()
		w.Header().Set(storeKeyHeader, key)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%q,"warm":%v}`, rb.name, warm)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		// Stand-in batch framing: newline-separated member payloads
		// (the router treats the archive body as opaque bytes, so the
		// tar details don't matter here). Every member writes through
		// the same store as /v1/analyze and names its key in the
		// NDJSON record, like funseekerd does.
		raw, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		items := 0
		for i, m := range strings.Split(string(raw), "\n") {
			if m == "" {
				continue
			}
			key := fakeStoreKey([]byte(m))
			rb.mu.Lock()
			if _, warm := rb.store[key]; !warm {
				rb.computes++
				rb.store[key] = []byte(fmt.Sprintf(`{"backend":%q,"body":%q}`, rb.name, m))
			}
			rb.mu.Unlock()
			enc.Encode(map[string]any{
				"index": i, "name": fmt.Sprintf("member-%d", i),
				"backend": rb.name, "store_key": key,
			})
			items++
		}
		enc.Encode(map[string]any{"summary": true, "items": items, "ok": items})
	})
	mux.HandleFunc("GET /v1/result", func(w http.ResponseWriter, r *http.Request) {
		rb.mu.Lock()
		val, ok := rb.store[r.URL.Query().Get("key")]
		rb.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(val)
	})
	mux.HandleFunc("PUT /v1/result", func(w http.ResponseWriter, r *http.Request) {
		val, _ := io.ReadAll(r.Body)
		rb.mu.Lock()
		rb.store[r.URL.Query().Get("key")] = val
		rb.mu.Unlock()
		fmt.Fprintln(w, `{"status":"stored"}`)
	})
	mux.HandleFunc("GET /v1/keys", func(w http.ResponseWriter, r *http.Request) {
		rb.mu.Lock()
		keys := make([]string, 0, len(rb.store))
		for k := range rb.store {
			keys = append(keys, k)
		}
		rb.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"count": len(keys), "keys": keys})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		rb.mu.Lock()
		n := len(rb.store)
		rb.mu.Unlock()
		fmt.Fprintf(w, `{"v":2,"store":{"records":%d}}`, n)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		rb.mu.Lock()
		down := rb.down
		rb.mu.Unlock()
		if down {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	rb.ts = httptest.NewServer(mux)
	t.Cleanup(rb.ts.Close)
	return rb
}

func (rb *replicaBackend) setDown(down bool) {
	rb.mu.Lock()
	rb.down = down
	rb.mu.Unlock()
}

func (rb *replicaBackend) hasKey(key string) bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	_, ok := rb.store[key]
	return ok
}

func (rb *replicaBackend) keyCount() int {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return len(rb.store)
}

func (rb *replicaBackend) computeCount() int {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.computes
}

func newReplicaRouter(t *testing.T, backends []*replicaBackend) (*httptest.Server, *router) {
	t.Helper()
	var urls []string
	for _, rb := range backends {
		urls = append(urls, rb.ts.URL)
	}
	rt, err := newRouter(routerConfig{backends: urls, replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.handler())
	t.Cleanup(ts.Close)
	return ts, rt
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationToRingSuccessor: a routed analyze is copied to exactly
// the binary's other replica-set member — LookupN(sum, 2)[1] — and to
// nobody else.
func TestReplicationToRingSuccessor(t *testing.T) {
	backends := []*replicaBackend{
		newReplicaBackend(t, "a"), newReplicaBackend(t, "b"), newReplicaBackend(t, "c"),
	}
	ts, rt := newReplicaRouter(t, backends)
	byURL := map[string]*replicaBackend{}
	for _, rb := range backends {
		byURL[rb.ts.URL] = rb
	}

	body := []byte("replicated-binary")
	sum := sha256.Sum256(body)
	set := rt.ring.LookupN(sum[:], 2)
	if len(set) != 2 {
		t.Fatalf("replica set = %v", set)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	key := resp.Header.Get(storeKeyHeader)
	if key == "" {
		t.Fatal("router did not relay the store key header")
	}

	waitFor(t, "replica write", func() bool { return byURL[set[1]].hasKey(key) })
	for _, rb := range backends {
		want := rb.ts.URL == set[0] || rb.ts.URL == set[1]
		if rb.hasKey(key) != want {
			t.Fatalf("backend %s hasKey = %v, want %v (set %v)", rb.name, rb.hasKey(key), want, set)
		}
	}
	if v := rt.replicaWrites.Value(); v != 1 {
		t.Fatalf("replica writes = %d, want 1", v)
	}

	// The same body again replicates nothing new (the seen-set holds).
	resp, err = http.Post(ts.URL+"/v1/analyze", "application/octet-stream", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rt.repairWG.Wait()
	if v := rt.replicaWrites.Value(); v != 1 {
		t.Fatalf("replica writes after repeat = %d, want still 1", v)
	}
}

// TestWarmFailoverServesFromSibling: kill a binary's owner and the
// request lands on the replica that already holds the stored result —
// served warm, zero recomputation.
func TestWarmFailoverServesFromSibling(t *testing.T) {
	backends := []*replicaBackend{
		newReplicaBackend(t, "a"), newReplicaBackend(t, "b"), newReplicaBackend(t, "c"),
	}
	ts, rt := newReplicaRouter(t, backends)
	byURL := map[string]*replicaBackend{}
	for _, rb := range backends {
		byURL[rb.ts.URL] = rb
	}

	body := "failover-binary"
	sum := sha256.Sum256([]byte(body))
	set := rt.ring.LookupN(sum[:], 2)
	owner, sibling := byURL[set[0]], byURL[set[1]]

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	key := resp.Header.Get(storeKeyHeader)
	resp.Body.Close()
	waitFor(t, "replica write", func() bool { return sibling.hasKey(key) })
	siblingComputes := sibling.computeCount()

	// Kill the owner's listener outright: the next request hits a
	// connection error, demotes it, and falls through to the sibling.
	owner.ts.CloseClientConnections()
	owner.ts.Close()

	resp, err = http.Post(ts.URL+"/v1/analyze", "application/octet-stream", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover status = %d, body %s", resp.StatusCode, raw)
	}
	var out struct {
		Backend string `json:"backend"`
		Warm    bool   `json:"warm"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Backend != sibling.name || !out.Warm {
		t.Fatalf("failover served by %q warm=%v, want %q warm", out.Backend, out.Warm, sibling.name)
	}
	if got := sibling.computeCount(); got != siblingComputes {
		t.Fatalf("sibling recomputed (%d -> %d computes) — failover was cold", siblingComputes, got)
	}
	if v := rt.replicaFallbacks.Value(); v != 1 {
		t.Fatalf("replica fallbacks = %d, want 1", v)
	}
	if v := rt.failovers.Value(); v != 1 {
		t.Fatalf("failovers = %d, want 1", v)
	}
}

// TestRepairRewarmsRejoinedNode: a node that was down while results
// were written gets them copied back when it rejoins, before any
// client asks for them.
func TestRepairRewarmsRejoinedNode(t *testing.T) {
	backends := []*replicaBackend{
		newReplicaBackend(t, "a"), newReplicaBackend(t, "b"),
	}
	ts, rt := newReplicaRouter(t, backends)

	// Take b out; every result written meanwhile lives only on a.
	backends[1].setDown(true)
	rt.checkHealth()
	const n = 6
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream",
			strings.NewReader(fmt.Sprintf("repair-binary-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %d = %d", i, resp.StatusCode)
		}
	}
	rt.repairWG.Wait()
	if got := backends[1].keyCount(); got != 0 {
		t.Fatalf("downed node holds %d keys, want 0", got)
	}
	if backends[0].keyCount() != n {
		t.Fatalf("survivor holds %d keys, want %d", backends[0].keyCount(), n)
	}

	// Rejoin: the up-transition triggers the repair pass.
	backends[1].setDown(false)
	rt.checkHealth()
	rt.repairWG.Wait()
	if got := backends[1].keyCount(); got != n {
		t.Fatalf("rejoined node holds %d keys after repair, want %d", got, n)
	}
	if v := rt.replicaRepairs.Value(); v != n {
		t.Fatalf("replica repairs = %d, want %d", v, n)
	}

	// And warm: the rejoined node serves its re-warmed keys without
	// computing.
	computesBefore := backends[1].computeCount()
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream",
			strings.NewReader(fmt.Sprintf("repair-binary-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := backends[1].computeCount(); got != computesBefore {
		t.Fatalf("rejoined node computed %d results after repair, want 0", got-computesBefore)
	}
}

// TestBatchMemberReplication: every member of a proxied /v1/batch ends
// up replicated exactly like the same binaries pushed one by one
// through /v1/analyze — the router tees each record's store_key off the
// NDJSON stream and runs the ordinary value-transfer replication per
// member. With the batch's serving backend killed afterwards, every
// member must still be served warm from its replica set with zero
// recomputation.
func TestBatchMemberReplication(t *testing.T) {
	backends := []*replicaBackend{
		newReplicaBackend(t, "a"), newReplicaBackend(t, "b"), newReplicaBackend(t, "c"),
	}
	ts, rt := newReplicaRouter(t, backends)
	byURL := map[string]*replicaBackend{}
	byName := map[string]*replicaBackend{}
	for _, rb := range backends {
		byURL[rb.ts.URL] = rb
		byName[rb.name] = rb
	}

	members := make([]string, 5)
	for i := range members {
		members[i] = fmt.Sprintf("batch-member-%d", i)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-tar",
		strings.NewReader(strings.Join(members, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", resp.StatusCode, raw)
	}

	// Decode the relayed NDJSON: one record per member (each naming its
	// store key and the backend that computed it) plus the summary.
	var servedBy string
	keys := make(map[string]string, len(members)) // member body -> key
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Summary  bool   `json:"summary"`
			Index    int    `json:"index"`
			Backend  string `json:"backend"`
			StoreKey string `json:"store_key"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if rec.Summary {
			continue
		}
		if rec.StoreKey == "" {
			t.Fatalf("member record without store_key: %q", line)
		}
		servedBy = rec.Backend
		keys[members[rec.Index]] = rec.StoreKey
	}
	if len(keys) != len(members) {
		t.Fatalf("got %d member records, want %d", len(keys), len(members))
	}

	// Every member's full replica set converges on its stored value.
	for _, m := range members {
		sum := sha256.Sum256([]byte(m))
		for _, u := range rt.ring.LookupN(sum[:], 2) {
			u, m := u, m
			waitFor(t, "batch replica write "+m, func() bool { return byURL[u].hasKey(keys[m]) })
		}
	}
	if v := rt.replicaWrites.Value(); v < uint64(len(members)) {
		t.Fatalf("replica writes = %d, want >= %d (one per member at minimum)", v, len(members))
	}
	totalComputes := func() int {
		n := 0
		for _, rb := range backends {
			n += rb.computeCount()
		}
		return n
	}
	if got := totalComputes(); got != len(members) {
		t.Fatalf("batch cost %d computes, want %d", got, len(members))
	}

	// Kill the backend that served the whole batch. Every member must
	// still be served warm by a surviving replica-set node — replication
	// made the batch's results survive the owner, with zero recomputation.
	served := byName[servedBy]
	if served == nil {
		t.Fatalf("unknown serving backend %q", servedBy)
	}
	served.ts.CloseClientConnections()
	served.ts.Close()
	for _, m := range members {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", strings.NewReader(m))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %q after kill = %d, body %s", m, resp.StatusCode, body)
		}
		var out struct {
			Backend string `json:"backend"`
			Warm    bool   `json:"warm"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Warm {
			t.Fatalf("member %q served cold by %q after owner kill", m, out.Backend)
		}
	}
	if got := totalComputes(); got != len(members) {
		t.Fatalf("members recomputed after owner kill: %d computes, want still %d", got, len(members))
	}
}

// TestBatchReplicationSkippedWhenDisabled: with replicas=1 the batch
// tee must not run — no keys collected, no replication traffic.
func TestBatchReplicationSkippedWhenDisabled(t *testing.T) {
	backends := []*replicaBackend{
		newReplicaBackend(t, "a"), newReplicaBackend(t, "b"),
	}
	var urls []string
	for _, rb := range backends {
		urls = append(urls, rb.ts.URL)
	}
	rt, err := newRouter(routerConfig{backends: urls, replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-tar",
		strings.NewReader("solo-member"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rt.repairWG.Wait()
	if v := rt.replicaWrites.Value(); v != 0 {
		t.Fatalf("replica writes = %d with replication disabled, want 0", v)
	}
	if total := backends[0].keyCount() + backends[1].keyCount(); total != 1 {
		t.Fatalf("stored copies = %d, want exactly 1 (no replication)", total)
	}
}

// TestNodesRelaysStats: /lb/nodes carries each healthy node's own v2
// stats document and the configured replica width.
func TestNodesRelaysStats(t *testing.T) {
	backends := []*replicaBackend{
		newReplicaBackend(t, "a"), newReplicaBackend(t, "b"),
	}
	ts, rt := newReplicaRouter(t, backends)

	resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", strings.NewReader("stats-binary"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rt.repairWG.Wait()

	nresp, err := http.Get(ts.URL + "/lb/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Replicas int `json:"replicas"`
		Nodes    []struct {
			Backend string `json:"backend"`
			Healthy bool   `json:"healthy"`
			Stats   *struct {
				V     int `json:"v"`
				Store struct {
					Records int `json:"records"`
				} `json:"store"`
			} `json:"stats"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(nresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if doc.Replicas != 2 || len(doc.Nodes) != 2 {
		t.Fatalf("/lb/nodes = replicas %d, %d nodes", doc.Replicas, len(doc.Nodes))
	}
	total := 0
	for _, n := range doc.Nodes {
		if n.Stats == nil || n.Stats.V != 2 {
			t.Fatalf("node %s stats = %+v, want a v2 document", n.Backend, n.Stats)
		}
		total += n.Stats.Store.Records
	}
	if total != 2 { // one result, replicated to both nodes
		t.Fatalf("total records across nodes = %d, want 2", total)
	}
}
