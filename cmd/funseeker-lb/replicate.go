package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// This file is the router's replication layer: every result computed on
// a binary's ring owner is copied (as its ~2 KB stored-result value,
// never recomputed) to the rest of its replica set — the first
// cfg.replicas distinct nodes in ring order. With N=2, killing any one
// node leaves a warm sibling already holding every result the victim
// owned, so failover serves from the store tier instead of re-running
// analyses; and when the victim rejoins, a repair pass copies back what
// it missed while it was gone.

// storeKeyHeader mirrors funseekerd's response header naming the
// persistent-store key of an analyze result. The first 32 bytes of the
// (hex) key are the binary's SHA-256 — the same bytes the router
// shards by — so ring placement is computable from the key alone.
const storeKeyHeader = "X-Funseeker-Store-Key"

// replicaTransferTimeout bounds one replica copy (a GET plus PUTs of a
// small JSON value) and one repair inventory fetch.
const replicaTransferTimeout = 15 * time.Second

// replicate copies the stored result named by key from the backend that
// just served it to the other members of its replica set. Runs
// asynchronously after the client response; failures are logged and
// retried on the next request for the same binary (the seen-set entry
// is dropped).
func (rt *router) replicate(sum []byte, src, key string) {
	defer rt.repairWG.Done()
	if !rt.markSeen(key) {
		return
	}
	members := rt.ring.LookupN(sum, rt.cfg.replicas)
	var val []byte
	ok := true
	for _, m := range members {
		if m == src {
			continue
		}
		if val == nil {
			v, err := rt.fetchResult(src, key)
			if err != nil {
				rt.logWarn("replica fetch failed", "backend", src, "err", err)
				rt.unmarkSeen(key)
				return
			}
			val = v
		}
		if err := rt.putResult(m, key, val); err != nil {
			rt.logWarn("replica write failed", "backend", m, "err", err)
			ok = false
			continue
		}
		rt.replicaWrites.Inc()
	}
	if !ok {
		rt.unmarkSeen(key)
	}
}

// repairNode re-warms a backend that just rejoined the ring: it diffs
// the rejoined node's key inventory against a healthy donor's and
// copies over every missing result whose replica set includes the
// rejoined node. Without this, a node that was down during a burst of
// writes would hold cold gaps until each binary happened to be
// requested again.
func (rt *router) repairNode(target string) {
	defer rt.repairWG.Done()
	rt.mu.Lock()
	var donor string
	for _, b := range rt.cfg.backends {
		if b != target && rt.healthy[b] {
			donor = b
			break
		}
	}
	rt.mu.Unlock()
	if donor == "" {
		return
	}
	donorKeys, err := rt.fetchKeys(donor)
	if err != nil {
		rt.logWarn("repair inventory failed", "backend", donor, "err", err)
		return
	}
	targetKeys, err := rt.fetchKeys(target)
	if err != nil {
		rt.logWarn("repair inventory failed", "backend", target, "err", err)
		return
	}
	have := make(map[string]bool, len(targetKeys))
	for _, k := range targetKeys {
		have[k] = true
	}
	var copied int
	for _, k := range donorKeys {
		if have[k] {
			continue
		}
		kb, err := hex.DecodeString(k)
		if err != nil || len(kb) < 32 {
			continue
		}
		// Placement is by the binary's SHA-256: the key's first 32 bytes.
		owned := false
		for _, m := range rt.ring.LookupN(kb[:32], rt.cfg.replicas) {
			if m == target {
				owned = true
				break
			}
		}
		if !owned {
			continue
		}
		val, err := rt.fetchResult(donor, k)
		if err != nil {
			continue
		}
		if err := rt.putResult(target, k, val); err != nil {
			continue
		}
		rt.replicaRepairs.Inc()
		copied++
	}
	if copied > 0 {
		rt.logInfo("repaired rejoined backend", "backend", target, "donor", donor, "results", copied)
	}
}

// markSeen records that key's replication has been handled; false means
// another request already did (or is doing) it. The set is bounded and
// cleared on membership transitions, when placements may have moved.
func (rt *router) markSeen(key string) bool {
	rt.seenMu.Lock()
	defer rt.seenMu.Unlock()
	if rt.seen[key] {
		return false
	}
	if len(rt.seen) >= 1<<16 {
		rt.seen = make(map[string]bool)
	}
	rt.seen[key] = true
	return true
}

func (rt *router) unmarkSeen(key string) {
	rt.seenMu.Lock()
	delete(rt.seen, key)
	rt.seenMu.Unlock()
}

func (rt *router) clearSeen() {
	rt.seenMu.Lock()
	rt.seen = make(map[string]bool)
	rt.seenMu.Unlock()
}

// fetchResult reads the raw stored-result value for key from backend.
func (rt *router) fetchResult(backend, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), replicaTransferTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/v1/result?key="+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.cfg.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /v1/result: status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// putResult installs a stored-result value on backend under key.
func (rt *router) putResult(backend, key string, val []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), replicaTransferTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, backend+"/v1/result?key="+key, bytes.NewReader(val))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.cfg.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("PUT /v1/result: status %d", resp.StatusCode)
	}
	return nil
}

// fetchKeys lists backend's persisted result keys. A 404 (no store
// configured) is an empty inventory, not an error.
func (rt *router) fetchKeys(backend string) ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), replicaTransferTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/v1/keys", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.cfg.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /v1/keys: status %d", resp.StatusCode)
	}
	var kr struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&kr); err != nil {
		return nil, err
	}
	return kr.Keys, nil
}

func (rt *router) logWarn(msg string, args ...any) {
	if rt.cfg.logger != nil {
		rt.cfg.logger.Warn(msg, args...)
	}
}

func (rt *router) logInfo(msg string, args ...any) {
	if rt.cfg.logger != nil {
		rt.cfg.logger.Info(msg, args...)
	}
}
