// Command funseeker-lb is the consistent-hash routing layer in front
// of N funseekerd replicas.
//
// Usage:
//
//	funseeker-lb -backends http://h1:8745,http://h2:8745 [-addr :8744]
//	             [-vnodes 512] [-replicas 2] [-failover 2] [-max-body B]
//	             [-health-interval 2s] [-health-timeout 2s]
//	             [-log text|json]
//
// Routing:
//
//	POST /v1/analyze  — routed by the binary's SHA-256 on a consistent-
//	                    hash ring, so each binary's cached/stored result
//	                    lives on one owner replica. Connection-level
//	                    failures fail over to the next replicas in ring
//	                    order; HTTP errors are the backend's answer and
//	                    are relayed as-is (including 429 + Retry-After
//	                    from a shedding replica).
//	POST /v1/batch    — streamed round-robin to one healthy replica
//	                    (an archive has no single content hash).
//	GET  /v1/healthz  — router liveness + current ring size.
//	GET  /lb/nodes    — per-backend health, ring membership, and each
//	                    node's relayed v2 stats document.
//	GET  /metrics     — router metrics (routed/failover/unrouted and
//	                    replica write/fallback/repair counters,
//	                    per-backend health gauges).
//
// Replication (-replicas N, default 2): after every successful analyze
// the stored result is copied — by value transfer over GET/PUT
// /v1/result, never recomputation — to the first N distinct nodes in
// ring order for that binary. Killing any one node then fails its keys
// over to a sibling that already holds them warm, and when the node
// rejoins, a repair pass diffs /v1/keys against a healthy donor and
// copies back everything it missed. -replicas 1 disables all of this.
//
// A background loop probes every backend's /v1/healthz; a replica that
// fails its probe (or a forward) leaves the ring — remapping only its
// ~1/N share of the key space — and rejoins on the next passing probe.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "funseeker-lb:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8744", "listen address")
		backends    = flag.String("backends", "", "comma-separated funseekerd base URLs (required)")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per backend (0 = ring default)")
		replicas    = flag.Int("replicas", 2, "nodes holding each result (1 disables replication)")
		failover    = flag.Int("failover", 2, "extra ring-order successors to try after a connection failure")
		maxBody     = flag.Int64("max-body", 64<<20, "max /v1/analyze body bytes (buffered to hash)")
		healthEvery = flag.Duration("health-interval", 2*time.Second, "backend health-probe cadence")
		healthTO    = flag.Duration("health-timeout", 2*time.Second, "single health-probe timeout")
		logFormat   = flag.String("log", "text", "log format: text or json")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("-log must be text or json, got %q", *logFormat)
	}
	logger := slog.New(handler)

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSuffix(strings.TrimSpace(b), "/"); b != "" {
			list = append(list, b)
		}
	}
	rt, err := newRouter(routerConfig{
		backends:      list,
		vnodes:        *vnodes,
		replicas:      *replicas,
		failover:      *failover,
		maxBodyBytes:  *maxBody,
		healthEvery:   *healthEvery,
		healthTimeout: *healthTO,
		logger:        logger,
	})
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	if *healthEvery > 0 {
		go rt.healthLoop(stop)
	}
	defer close(stop)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("routing", "addr", *addr, "backends", len(list))
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
