package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/funseeker/funseeker/internal/obs"
	"github.com/funseeker/funseeker/internal/ring"
)

// routerConfig carries one funseeker-lb instance's knobs.
type routerConfig struct {
	// backends are the funseekerd base URLs ("http://host:port") the
	// router shards over.
	backends []string
	// vnodes is the per-backend virtual-node count (0 selects the ring
	// default).
	vnodes int
	// maxBodyBytes caps a single-shot analyze body — the router must
	// buffer it to hash it.
	maxBodyBytes int64
	// replicas is the replica-set width: every analyze result is
	// copied to the first `replicas` distinct nodes in ring order for
	// its binary, so losing any one node leaves a warm sibling.
	// 1 disables replication; 0 selects the default of 2.
	replicas int
	// failover is how many extra ring-order successors (beyond the
	// replica set) to try after a connection-level failure.
	failover int
	// healthEvery is the health-probe cadence; zero disables the
	// background loop (tests drive checkHealth directly).
	healthEvery time.Duration
	// healthTimeout bounds one probe.
	healthTimeout time.Duration
	// client is the forwarding HTTP client; nil selects a default whose
	// transport bounds the wait for response headers, so a backend that
	// accepts connections but never answers fails over instead of
	// hanging the forward. Response bodies are unbounded — batch
	// streams legitimately run for minutes.
	client *http.Client
	// logger receives routing decisions and health transitions; nil
	// discards.
	logger *slog.Logger
	// registry receives the router metrics; nil selects a private one.
	registry *obs.Registry
}

// router is the consistent-hash routing layer in front of N funseekerd
// replicas: /v1/analyze routes by content hash so each binary's result
// (LRU-hot or store-warm) lives on one owner replica; /v1/batch
// round-robins whole archives across healthy replicas; health probes
// move replicas in and out of the ring so a restart remaps only ~1/N
// of the key space while it lasts.
type router struct {
	cfg  routerConfig
	ring *ring.Ring
	// healthy tracks the probe state per backend; the ring holds only
	// the healthy subset.
	mu      sync.Mutex
	healthy map[string]bool
	// rr is the round-robin cursor for batch routing.
	rr atomic.Uint64

	// seen is the bounded set of store keys whose replication already
	// ran; cleared on membership transitions, when placements move.
	seenMu sync.Mutex
	seen   map[string]bool
	// repairWG tracks in-flight replication and repair goroutines, so
	// tests (and shutdown) can wait for them deterministically.
	repairWG sync.WaitGroup

	routedTo         *obs.CounterVec // requests forwarded, by backend
	failovers        *obs.Counter    // candidates skipped after a connection error
	unrouted         *obs.Counter    // requests refused: no healthy backend
	healthUp         *obs.GaugeVec   // 1 healthy / 0 down, by backend
	replicaWrites    *obs.Counter    // results copied to a replica after an analyze
	replicaFallbacks *obs.Counter    // analyzes served by a non-first candidate
	replicaRepairs   *obs.Counter    // results copied back to a rejoining node
}

func newRouter(cfg routerConfig) (*router, error) {
	if len(cfg.backends) == 0 {
		return nil, errors.New("no backends configured")
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	if cfg.replicas == 0 {
		cfg.replicas = 2
	}
	if cfg.replicas < 1 {
		return nil, fmt.Errorf("replicas must be >= 1, got %d", cfg.replicas)
	}
	if cfg.failover <= 0 {
		cfg.failover = 2
	}
	if cfg.healthTimeout <= 0 {
		cfg.healthTimeout = 2 * time.Second
	}
	if cfg.client == nil {
		// No Client.Timeout: it would cap the whole exchange and kill
		// long batch streams. ResponseHeaderTimeout bounds only the
		// header wait, which is what failover needs to engage on a hung
		// backend.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.ResponseHeaderTimeout = 30 * time.Second
		cfg.client = &http.Client{Transport: tr}
	}
	if cfg.registry == nil {
		cfg.registry = obs.NewRegistry()
	}
	rt := &router{
		cfg:     cfg,
		ring:    ring.New(cfg.vnodes),
		healthy: make(map[string]bool),
		seen:    make(map[string]bool),
	}
	rt.routedTo = cfg.registry.NewCounterVec("funseekerlb_routed_total",
		"Requests forwarded, by backend.", "backend")
	rt.failovers = cfg.registry.NewCounter("funseekerlb_failovers_total",
		"Requests that skipped their owner after a connection error.")
	rt.unrouted = cfg.registry.NewCounter("funseekerlb_unrouted_total",
		"Requests refused because no healthy backend remained.")
	rt.healthUp = cfg.registry.NewGaugeVec("funseekerlb_backend_up",
		"Backend health probe state (1 up, 0 down).", "backend")
	rt.replicaWrites = cfg.registry.NewCounter("funseekerlb_replica_writes_total",
		"Stored results copied to a replica after an analyze.")
	rt.replicaFallbacks = cfg.registry.NewCounter("funseekerlb_replica_fallbacks_total",
		"Analyzes served by a replica other than the ring owner.")
	rt.replicaRepairs = cfg.registry.NewCounter("funseekerlb_replica_repairs_total",
		"Stored results copied back to a rejoining node by the repair pass.")
	// Start optimistic: every configured backend is in the ring until a
	// probe says otherwise, so the router serves before the first sweep.
	for _, b := range cfg.backends {
		rt.healthy[b] = true
		rt.ring.Add(b)
		rt.healthUp.With(b).Set(1)
	}
	return rt, nil
}

// handler wires the router's public routes.
func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", rt.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /lb/nodes", rt.handleNodes)
	mux.Handle("GET /metrics", rt.cfg.registry.Handler())
	return mux
}

// healthLoop probes every backend each cfg.healthEvery until stop
// closes.
func (rt *router) healthLoop(stop <-chan struct{}) {
	t := time.NewTicker(rt.cfg.healthEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			rt.checkHealth()
		case <-stop:
			return
		}
	}
}

// checkHealth probes every configured backend once and moves it in or
// out of the ring on transitions. Exported-for-tests via direct call.
func (rt *router) checkHealth() {
	type probe struct {
		backend string
		up      bool
	}
	results := make(chan probe, len(rt.cfg.backends))
	for _, b := range rt.cfg.backends {
		go func(b string) {
			results <- probe{b, rt.probe(b)}
		}(b)
	}
	for range rt.cfg.backends {
		p := <-results
		rt.setHealth(p.backend, p.up)
	}
}

func (rt *router) probe(backend string) bool {
	client := &http.Client{Timeout: rt.cfg.healthTimeout}
	resp, err := client.Get(backend + "/v1/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// setHealth records a probe result, updating the ring only on a
// transition — membership churn is what remaps keys, so steady state
// must not touch it.
func (rt *router) setHealth(backend string, up bool) {
	rt.mu.Lock()
	was := rt.healthy[backend]
	rt.healthy[backend] = up
	rt.mu.Unlock()
	if was == up {
		return
	}
	// Membership changed: replica placements may have moved, so the
	// replication dedup set is stale either way.
	rt.clearSeen()
	if up {
		rt.ring.Add(backend)
		rt.healthUp.With(backend).Set(1)
		// The rejoined node missed every write while it was out; copy
		// back what it should hold before cold requests find the gaps.
		if rt.cfg.replicas > 1 {
			rt.repairWG.Add(1)
			go rt.repairNode(backend)
		}
	} else {
		rt.ring.Remove(backend)
		rt.healthUp.With(backend).Set(0)
	}
	if rt.cfg.logger != nil {
		rt.cfg.logger.Info("backend health transition", "backend", backend, "up", up)
	}
}

// handleAnalyze buffers the binary, routes it by content hash, and
// forwards. On a connection-level failure the owner is marked down and
// the next ring successors are tried; an HTTP-level error (4xx/5xx)
// is the backend's answer and is relayed as-is.
func (rt *router) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf(`{"error":"body exceeds the %d-byte limit"}`, tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, `{"error":"reading body"}`, http.StatusBadRequest)
		return
	}
	sum := sha256.Sum256(raw)
	// Candidates in ring order: the replica set first (any of them can
	// serve the result warm), then failover spares for when a whole
	// replica set is unreachable at once.
	candidates := rt.ring.LookupN(sum[:], rt.cfg.replicas+rt.cfg.failover)
	if len(candidates) == 0 {
		rt.unrouted.Inc()
		http.Error(w, `{"error":"no healthy backend"}`, http.StatusServiceUnavailable)
		return
	}
	for i, backend := range candidates {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			backend+"/v1/analyze?"+r.URL.RawQuery, bytes.NewReader(raw))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		copyTraceHeaders(req, r)
		resp, err := rt.cfg.client.Do(req)
		if err != nil {
			// Connection-level: this replica is gone; say so and try the
			// next candidate in ring order.
			rt.setHealth(backend, false)
			rt.failovers.Inc()
			if rt.cfg.logger != nil {
				rt.cfg.logger.Warn("forward failed", "backend", backend, "err", err)
			}
			continue
		}
		if resp.StatusCode >= 500 && i+1 < len(candidates) {
			// The replica answered but failed internally; its sibling may
			// hold the replicated result. Not a connection failure, so it
			// keeps its ring slot. 4xx (including 429) is the backend's
			// answer and is relayed as-is below.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if rt.cfg.logger != nil {
				rt.cfg.logger.Warn("backend 5xx, trying sibling", "backend", backend, "status", resp.StatusCode)
			}
			continue
		}
		rt.routedTo.With(backend).Inc()
		if i > 0 {
			rt.replicaFallbacks.Inc()
		}
		key := resp.Header.Get(storeKeyHeader)
		status := resp.StatusCode
		relay(w, resp)
		if status == http.StatusOK && key != "" && rt.cfg.replicas > 1 {
			// Copy the stored result to the rest of its replica set off
			// the request path; the client never waits on replication.
			rt.repairWG.Add(1)
			go rt.replicate(sum[:], backend, key)
		}
		return
	}
	rt.unrouted.Inc()
	http.Error(w, `{"error":"every candidate backend failed"}`, http.StatusBadGateway)
}

// handleBatch streams a whole archive to one healthy replica, chosen
// round-robin: a batch has no single content hash to shard by, and
// member-level resharding would mean re-framing the archive — the
// per-binary store/cache tier below makes the placement loss cheap.
func (rt *router) handleBatch(w http.ResponseWriter, r *http.Request) {
	backend, ok := rt.nextBackend()
	if !ok {
		rt.unrouted.Inc()
		http.Error(w, `{"error":"no healthy backend"}`, http.StatusServiceUnavailable)
		return
	}
	// The batch hop is full duplex: the transport is still forwarding
	// the uploader's archive off r.Body while relayStream writes the
	// backend's NDJSON records. Without this, the HTTP/1 server drains
	// the unread request body on the first response write — racing the
	// transport's forwarding and corrupting the archive the backend
	// sees for any batch not fully uploaded by then. funseekerd's own
	// batch handler does the same; the proxy hop needs it too.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		http.Error(w, `{"error":"full-duplex streaming unsupported"}`, http.StatusInternalServerError)
		return
	}
	body := &bodyErrReader{r: r.Body}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		backend+"/v1/batch?"+r.URL.RawQuery, body)
	if err != nil {
		http.Error(w, `{"error":"building forward request"}`, http.StatusInternalServerError)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	copyTraceHeaders(req, r)
	resp, err := rt.cfg.client.Do(req)
	if err != nil {
		if body.Err() != nil {
			// The uploader's stream failed, not the backend: demoting the
			// backend here would eject a healthy replica from the ring and
			// remap ~1/N of the key space on every flaky client.
			http.Error(w, `{"error":"reading request body"}`, http.StatusBadRequest)
			return
		}
		rt.setHealth(backend, false)
		rt.unrouted.Inc()
		http.Error(w, `{"error":"backend unreachable"}`, http.StatusBadGateway)
		return
	}
	rt.routedTo.With(backend).Inc()
	// Tee the NDJSON stream: each member record carries its store_key,
	// and a batch must leave every member's result replicated exactly
	// like the same binaries pushed through /v1/analyze one by one —
	// otherwise killing the serving backend after a batch would force a
	// full recomputation of the whole archive. Keys are collected while
	// relaying and replicated off the response path once the stream
	// ends (even a partial relay replicates what was computed).
	var keys *batchKeyScanner
	if resp.StatusCode == http.StatusOK && rt.cfg.replicas > 1 {
		keys = &batchKeyScanner{}
	}
	relayStream(w, resp, keys)
	if keys == nil {
		return
	}
	for _, key := range keys.finish() {
		kb, err := hex.DecodeString(key)
		if err != nil || len(kb) < sha256.Size {
			continue
		}
		rt.repairWG.Add(1)
		go rt.replicate(kb[:sha256.Size], backend, key)
	}
}

// batchKeyScanner incrementally splits a relayed batch response into
// NDJSON lines and collects each member record's store_key. Error
// records and the summary line carry no key and are skipped; the
// carry buffer only ever holds one partial line (~2 KB), never the
// stream.
type batchKeyScanner struct {
	carry []byte
	keys  []string
}

func (s *batchKeyScanner) feed(p []byte) {
	s.carry = append(s.carry, p...)
	for {
		i := bytes.IndexByte(s.carry, '\n')
		if i < 0 {
			return
		}
		s.line(s.carry[:i])
		s.carry = append(s.carry[:0], s.carry[i+1:]...)
	}
}

func (s *batchKeyScanner) line(line []byte) {
	var rec struct {
		StoreKey string `json:"store_key"`
	}
	if json.Unmarshal(line, &rec) == nil && rec.StoreKey != "" {
		s.keys = append(s.keys, rec.StoreKey)
	}
}

// finish flushes any trailing unterminated line and returns the keys.
func (s *batchKeyScanner) finish() []string {
	if len(s.carry) > 0 {
		s.line(s.carry)
		s.carry = nil
	}
	return s.keys
}

// bodyErrReader wraps the uploader's request body and records any read
// error, so a failed forward is blamed on the right side of the proxy:
// a client that dies mid-upload must not cost a backend its ring slot.
// The mutex makes Err safe to call from the handler while the
// transport's write loop is still reading.
type bodyErrReader struct {
	r   io.Reader
	mu  sync.Mutex
	err error
}

func (b *bodyErrReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err != nil && err != io.EOF {
		b.mu.Lock()
		b.err = err
		b.mu.Unlock()
	}
	return n, err
}

func (b *bodyErrReader) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// nextBackend returns the next healthy backend in round-robin order.
func (rt *router) nextBackend() (string, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := len(rt.cfg.backends)
	for i := 0; i < n; i++ {
		b := rt.cfg.backends[int(rt.rr.Add(1))%n]
		if rt.healthy[b] {
			return b, true
		}
	}
	return "", false
}

func (rt *router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","ring_nodes":%d}`+"\n", rt.ring.Len())
}

// handleNodes reports ring membership, probe state, and each healthy
// node's own v2 stats document — the operator's one-stop view of where
// the key space lives and how warm each replica is.
func (rt *router) handleNodes(w http.ResponseWriter, r *http.Request) {
	type node struct {
		Backend string `json:"backend"`
		Healthy bool   `json:"healthy"`
		// Stats is the node's relayed /v1/stats ("v": 2) document;
		// omitted when the node is down or the fetch fails.
		Stats json.RawMessage `json:"stats,omitempty"`
	}
	rt.mu.Lock()
	nodes := make([]node, 0, len(rt.cfg.backends))
	for _, b := range rt.cfg.backends {
		nodes = append(nodes, node{Backend: b, Healthy: rt.healthy[b]})
	}
	rt.mu.Unlock()
	var wg sync.WaitGroup
	for i := range nodes {
		if !nodes[i].Healthy {
			continue
		}
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.healthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Backend+"/v1/stats", nil)
			if err != nil {
				return
			}
			resp, err := rt.cfg.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			if raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil && json.Valid(raw) {
				n.Stats = raw
			}
		}(&nodes[i])
	}
	wg.Wait()
	writeJSONLB(w, map[string]any{
		"replicas":   rt.cfg.replicas,
		"nodes":      nodes,
		"ring_nodes": rt.ring.Nodes(),
	})
}

// copyTraceHeaders forwards the request-trace header so one ID follows
// the request across the router hop.
func copyTraceHeaders(dst *http.Request, src *http.Request) {
	if id := src.Header.Get(obs.RequestIDHeader); id != "" {
		dst.Header.Set(obs.RequestIDHeader, id)
	}
}

// relay copies a buffered backend response to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyResponseHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// relayStream copies an NDJSON stream, flushing per write so records
// reach the client as they complete. When keys is non-nil every relayed
// byte is also fed to it, so the batch handler can replicate member
// results after the stream ends.
func relayStream(w http.ResponseWriter, resp *http.Response, keys *batchKeyScanner) {
	defer resp.Body.Close()
	copyResponseHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if keys != nil {
				keys.feed(buf[:n])
			}
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func copyResponseHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After", storeKeyHeader, obs.RequestIDHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

func writeJSONLB(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
