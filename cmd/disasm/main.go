// Command disasm linearly disassembles the .text section of an ELF
// binary using the internal x86 decoder — the same sweep FunSeeker runs.
//
// Usage:
//
//	disasm [-n 0] [-branches] <binary>
//
// -n limits the number of instructions printed (0 = all); -branches
// prints only control-flow instructions and end-branch markers.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/funseeker/funseeker"
	"github.com/funseeker/funseeker/internal/x86"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		limit    = flag.Int("n", 0, "max instructions to print (0 = all)")
		branches = flag.Bool("branches", false, "print only branches and end-branch markers")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: disasm [flags] <binary>")
	}
	bin, err := funseeker.Open(flag.Arg(0))
	if err != nil {
		return err
	}

	printed := 0
	off := uint64(0)
	for off < uint64(len(bin.Text)) {
		if *limit > 0 && printed >= *limit {
			break
		}
		text, n, err := x86.Format(bin.Text[off:], bin.TextAddr+off, bin.Mode)
		if err != nil {
			fmt.Printf("%#010x: .byte %#02x\n", bin.TextAddr+off, bin.Text[off])
			off++
			continue
		}
		inst, _ := x86.Decode(bin.Text[off:], bin.TextAddr+off, bin.Mode)
		show := !*branches || inst.Class.IsBranch() || inst.IsEndbr()
		if show {
			fmt.Printf("%#010x: %s\n", bin.TextAddr+off, text)
			printed++
		}
		off += uint64(n)
	}
	return nil
}
