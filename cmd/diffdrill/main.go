// Command diffdrill drives the differential testing harness in
// internal/diffcheck over a range of generator seeds: each seed becomes
// a random program specification, is compiled to a CET ELF image with
// known ground truth, and is checked against the full invariant oracle
// (FunSeeker configurations ①–⑤, baseline models, recursive descent,
// shared analysis-context bookkeeping).
//
// Usage:
//
//	diffdrill [-seeds N] [-start S] [-duration D] [-workers W]
//	          [-keep-failures DIR] [-max-funcs N] [-bti F] [-nocet F] [-v]
//
// With -duration set, diffdrill runs seeds from -start upward until the
// deadline; otherwise it runs exactly -seeds seeds. With -bti F, the
// given fraction of seeds (chosen deterministically per seed, so runs
// replay) compile through the AArch64/BTI synthesizer and check the BTI
// invariant battery instead. With -nocet F, that fraction of x86 builds
// drop -fcf-protection entirely (the FDE-only workload configuration ⑤
// degrades to); -nocet -1 keeps the generator default. Failing cases
// are minimized and written as
// regression-spec JSON under -keep-failures (default
// internal/diffcheck/testdata/failures; promote good ones to
// internal/diffcheck/testdata/specs so the package test replays them).
// Exit status is 1 if any seed produced a violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/funseeker/funseeker/internal/diffcheck"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 1000, "number of seeds to check (ignored when -duration is set)")
		start    = flag.Int64("start", 1, "first seed")
		duration = flag.Duration("duration", 0, "run until this deadline instead of a fixed seed count")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		keepDir  = flag.String("keep-failures", "internal/diffcheck/testdata/failures", "directory for minimized reproducers of failing seeds")
		maxFail  = flag.Int("max-failures", 10, "stop after this many failing seeds")
		maxFuncs = flag.Int("max-funcs", 0, "override generator max function count (0 = default)")
		btiFrac  = flag.Float64("bti", 0, "fraction of seeds checked through the AArch64/BTI backend (0-1)")
		noCET    = flag.Float64("nocet", -1, "fraction of x86 builds generated without CET markers (0-1; -1 = generator default)")
		verbose  = flag.Bool("v", false, "log every violation as it is found")
	)
	flag.Parse()

	opts := diffcheck.DefaultGenOptions()
	if *maxFuncs > 0 {
		opts.MaxFuncs = *maxFuncs
	}
	if *noCET >= 0 {
		opts.NoCETProb = *noCET
	}

	var (
		next     atomic.Int64
		checked  atomic.Int64
		failed   atomic.Int64
		deadline time.Time
		mu       sync.Mutex // serializes failure reporting + minimization
		wg       sync.WaitGroup
	)
	next.Store(*start)
	end := *start + int64(*seeds)
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
		end = 1<<62 - 1
	}

	t0 := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed := next.Add(1) - 1
				if seed >= end || failed.Load() >= int64(*maxFail) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				// Deterministic per-seed backend choice so any seed replays
				// identically regardless of worker interleaving.
				if *btiFrac > 0 && float64(uint64(seed)%997)/997 < *btiFrac {
					res := diffcheck.CheckBTISeed(seed, opts)
					checked.Add(1)
					if !res.Failed() {
						continue
					}
					failed.Add(1)
					mu.Lock()
					reportBTIFailure(res, *keepDir, *verbose)
					mu.Unlock()
					continue
				}
				res := diffcheck.CheckSeed(seed, opts)
				checked.Add(1)
				if !res.Failed() {
					continue
				}
				failed.Add(1)
				mu.Lock()
				reportFailure(res, *keepDir, *verbose)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	elapsed := time.Since(t0)
	nc, nf := checked.Load(), failed.Load()
	rate := float64(nc) / elapsed.Seconds()
	fmt.Printf("diffdrill: %d seeds checked in %v (%.0f seeds/s), %d failing\n",
		nc, elapsed.Round(time.Millisecond), rate, nf)
	if nf > 0 {
		os.Exit(1)
	}
}

// reportFailure prints the violation set for a failing seed, shrinks it
// to a minimal reproducer, and persists the result as a regression case.
func reportFailure(res *diffcheck.CaseResult, keepDir string, verbose bool) {
	fmt.Fprintf(os.Stderr, "FAIL seed %d (%d violations)\n", res.Seed, len(res.Violations))
	if verbose {
		fmt.Fprintf(os.Stderr, "%s\n", res)
	}
	spec, cfg := diffcheck.MinimizeResult(res)
	kinds := make([]string, 0, len(res.Violations))
	seen := map[string]bool{}
	for _, v := range res.Violations {
		if !seen[v.Check] {
			seen[v.Check] = true
			kinds = append(kinds, v.Check)
		}
	}
	cfgJSON := diffcheck.EncodeConfig(cfg)
	rc := &diffcheck.RegressionCase{
		Description: fmt.Sprintf("diffdrill seed %d: %s (minimized from %d funcs to %d)",
			res.Seed, kinds[0], len(res.Spec.Funcs), len(spec.Funcs)),
		Seed:       res.Seed,
		Violations: kinds,
		Arch:       "x86",
		Config:     &cfgJSON,
		Spec:       spec,
	}
	path := filepath.Join(keepDir, fmt.Sprintf("seed_%d.json", res.Seed))
	if err := rc.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "diffdrill: save reproducer: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "  minimized reproducer: %s (%d funcs)\n", path, len(spec.Funcs))
}

// reportBTIFailure is reportFailure for the AArch64 oracle.
func reportBTIFailure(res *diffcheck.BTICaseResult, keepDir string, verbose bool) {
	fmt.Fprintf(os.Stderr, "FAIL bti seed %d (%d violations)\n", res.Seed, len(res.Violations))
	if verbose {
		fmt.Fprintf(os.Stderr, "%s\n", res)
	}
	spec, cfg := diffcheck.MinimizeBTIResult(res)
	kinds := make([]string, 0, len(res.Violations))
	seen := map[string]bool{}
	for _, v := range res.Violations {
		if !seen[v.Check] {
			seen[v.Check] = true
			kinds = append(kinds, v.Check)
		}
	}
	cfgJSON := diffcheck.EncodeBTIConfig(cfg)
	rc := &diffcheck.RegressionCase{
		Description: fmt.Sprintf("diffdrill bti seed %d: %s (minimized from %d funcs to %d)",
			res.Seed, kinds[0], len(res.Spec.Funcs), len(spec.Funcs)),
		Seed:       res.Seed,
		Violations: kinds,
		Arch:       "aarch64",
		BTIConfig:  &cfgJSON,
		Spec:       spec,
	}
	path := filepath.Join(keepDir, fmt.Sprintf("bti_seed_%d.json", res.Seed))
	if err := rc.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "diffdrill: save reproducer: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "  minimized reproducer: %s (%d funcs)\n", path, len(spec.Funcs))
}
