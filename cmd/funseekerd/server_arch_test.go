package main

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/funseeker/funseeker/internal/armsynth"
	"github.com/funseeker/funseeker/internal/synth"
)

// testBTIELF compiles one small AArch64/BTI binary once per process.
var testBTIELFOnce = sync.OnceValues(func() ([]byte, error) {
	spec := &synth.ProgSpec{
		Name: "serve_arm",
		Lang: synth.LangC,
		Seed: 11,
		Funcs: []synth.FuncSpec{
			{Name: "main", BodySize: 4, Calls: []int{1}},
			{Name: "helper", Static: true, AddressTaken: true, BodySize: 3},
		},
	}
	res, err := armsynth.Compile(spec, armsynth.Config{Opt: synth.O2})
	if err != nil {
		return nil, err
	}
	return res.Image, nil
})

func testBTIELF(t *testing.T) []byte {
	t.Helper()
	raw, err := testBTIELFOnce()
	if err != nil {
		t.Fatalf("building BTI test binary: %v", err)
	}
	return raw
}

// TestAnalyzeAArch64: an AArch64 upload is accepted on the same
// endpoint as x86, the response names the backend, and the per-arch
// counter labels both architectures.
func TestAnalyzeAArch64(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})

	resp, body := postBinary(t, ts.URL+"/v1/analyze?config=4", testBTIELF(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Arch != "aarch64" {
		t.Fatalf("arch = %q, want aarch64", ar.Arch)
	}
	if len(ar.Entries) == 0 || ar.Endbrs == 0 {
		t.Fatalf("empty aarch64 analysis: %+v", ar)
	}

	// An x86 upload alongside it, then the exposition must carry one
	// count per architecture label.
	resp, body = postBinary(t, ts.URL+"/v1/analyze", testELF(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("x86 status = %d: %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); ar.Arch != "x86-64" {
		t.Fatalf("x86 arch = %q", ar.Arch)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	out := string(mbody)
	for _, want := range []string{
		`funseekerd_analyze_arch_total{arch="aarch64"} 1`,
		`funseekerd_analyze_arch_total{arch="x86-64"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeArchParam: ?arch= pins the backend (spelling-insensitive)
// and rejects unknown names with a 400 before any work runs.
func TestAnalyzeArchParam(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})

	// arm64 is the accepted alternate spelling of aarch64.
	resp, body := postBinary(t, ts.URL+"/v1/analyze?arch=arm64", testBTIELF(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); ar.Arch != "aarch64" {
		t.Fatalf("arch = %q, want aarch64", ar.Arch)
	}

	resp, body = postBinary(t, ts.URL+"/v1/analyze?arch=mips", testELF(t))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown arch status = %d: %s", resp.StatusCode, body)
	}
}
