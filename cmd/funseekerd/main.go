// Command funseekerd serves FunSeeker function identification over HTTP,
// backed by the corpus-scale analysis engine: a bounded worker pool, a
// content-hash (SHA-256) LRU result cache, and cooperative cancellation
// threaded down into the linear sweep.
//
// Usage:
//
//	funseekerd [-addr :8745] [-jobs N] [-cache-bytes B]
//	           [-max-body B] [-max-batch B] [-timeout 30s]
//	           [-shutdown-grace 10s] [-require-cet]
//	           [-store-dir DIR] [-store-segment-bytes B]
//	           [-shed-queue-p99 D] [-shed-window 10s]
//	           [-log text|json] [-slow 1s] [-debug-addr addr]
//
// Endpoints:
//
//	POST /v1/analyze   analyze an ELF image. The image is the raw request
//	                   body, or the "binary" file field of a multipart
//	                   form. Query: config=1..4 (Table II configuration,
//	                   default 4), superset=1 (byte-level end-branch
//	                   scan), require_cet=1 (fail on endbr-free
//	                   binaries). Returns the report as JSON.
//	POST /v1/batch     analyze a tar archive (or multipart form) of ELF
//	                   images; results stream back as NDJSON, one
//	                   record per member in archive order, errors
//	                   isolated per member, then a summary line.
//	GET  /v1/healthz   liveness probe.
//	GET  /v1/stats     versioned stats document ("v": 2): engine, cache,
//	                   store (with compaction), shed, and server blocks.
//	                   ?v=1 keeps the old flat shape for one release.
//	                   Also published through expvar under "funseeker"
//	                   at /debug/vars.
//	GET  /v1/result    raw stored-result value by hex store key; with
//	PUT  /v1/result    and GET /v1/keys this is the replica-transfer
//	                   surface funseeker-lb uses to copy results between
//	                   nodes instead of recomputing them.
//	POST /v1/admin/compact  run one store compaction immediately.
//	GET  /metrics      Prometheus text-format exposition: request
//	                   counters by status kind, analyze/stage latency
//	                   histograms, cache hit/miss/coalesced counters.
//
// With -store-dir set, every cold result is written through to a
// crash-safe append-only store in that directory and served from it
// after a restart (Cached: "store"). With -shed-queue-p99 set, the
// server refuses new analysis work with 429 + Retry-After while the
// windowed queue-wait p99 is over the bound.
//
// Every response carries an X-Funseeker-Request-Id header (generated at
// the edge, or adopted from a well-formed client-supplied value); the
// same ID appears on every access-log line and inside error envelopes.
// Requests slower than -slow are additionally logged at WARN level.
//
// With -debug-addr set, a second listener serves net/http/pprof,
// /debug/vars, and /metrics — keep it on localhost or a management
// network; profiles are not for the public edge.
//
// The server stops accepting work on SIGINT/SIGTERM and gives in-flight
// requests -shutdown-grace to finish before hard-closing connections,
// which cancels their contexts and (through the engine) stops their
// sweeps.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "funseekerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8745", "listen address")
		jobs         = flag.Int("jobs", 0, "max concurrent analyses (0 = GOMAXPROCS)")
		cacheBytes   = flag.Int64("cache-bytes", engine.DefaultCacheBytes, "result-cache budget in bytes (negative disables)")
		maxBody      = flag.Int64("max-body", 64<<20, "max request body bytes")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request analysis timeout (0 disables)")
		grace        = flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown window")
		requireCET   = flag.Bool("require-cet", false, "reject binaries without any end-branch instruction")
		storeDir     = flag.String("store-dir", "", "persistent result-store directory (empty disables persistence)")
		storeSeg     = flag.Int64("store-segment-bytes", 0, "persistent-store segment rotation size (0 = default)")
		compactEvery = flag.Duration("store-compact-every", 0, "background store-compaction check interval (0 = default, negative disables)")
		compactRatio = flag.Float64("store-compact-ratio", 0, "garbage ratio that triggers background compaction (0 = default)")
		compactMin   = flag.Int64("store-compact-min-bytes", 0, "on-disk floor below which background compaction never runs (0 = default)")
		maxBatch     = flag.Int64("max-batch", 0, "max /v1/batch upload bytes (0 = 16x max-body)")
		shedP99      = flag.Duration("shed-queue-p99", 0, "shed with 429 when queue-wait p99 exceeds this (0 disables)")
		shedWin      = flag.Duration("shed-window", 0, "sampling window for the shed signal (0 = default, negative = cumulative)")
		logFormat    = flag.String("log", "text", "log format: text or json")
		slow         = flag.Duration("slow", time.Second, "WARN-log requests slower than this (0 disables)")
		debugAddr    = flag.String("debug-addr", "", "optional debug listen address for pprof/expvar/metrics (e.g. 127.0.0.1:8746)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("-log must be text or json, got %q", *logFormat)
	}
	// The obs wrapper stamps request_id onto every line logged with a
	// request context — handlers and everything below them just log.
	logger := slog.New(obs.NewLogHandler(handler))

	// One registry spans both layers: the engine's stage/cache series
	// and the server's HTTP series come out of the same /metrics scrape.
	// Defaults and validation for every engine knob — cache budget,
	// store sizing, compaction, shedding — live in Config.Normalize, so
	// the flags above pass zeros straight through. With -store-dir set,
	// the engine opens (and owns) the persistent store: results computed
	// before a crash or deploy are served warm (CacheSource "store")
	// after a restart, and the background compactor keeps superseded
	// records from accumulating.
	reg := obs.NewRegistry()
	eng, err := engine.New(engine.Config{
		Jobs:                     *jobs,
		CacheBytes:               *cacheBytes,
		RequireCET:               *requireCET,
		StoreDir:                 *storeDir,
		StoreSegmentBytes:        *storeSeg,
		StoreCompactEvery:        *compactEvery,
		StoreCompactGarbageRatio: *compactRatio,
		StoreCompactMinBytes:     *compactMin,
		ShedQueueP99:             *shedP99,
		ShedWindow:               *shedWin,
		Registry:                 reg,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	if st := eng.Stats().Store; st != nil {
		logger.Info("result store open", "dir", st.Dir,
			"records", st.Records, "segments", st.Segments,
			"recovered", st.RecoveredRecords, "truncated_bytes", st.TruncatedBytes)
	}
	srv2 := newServer(eng, serverConfig{
		maxBodyBytes:  *maxBody,
		maxBatchBytes: *maxBatch,
		reqTimeout:    *timeout,
		slowThreshold: *slow,
		logger:        logger,
		registry:      reg,
	})
	srvHandler := srv2.handler()

	// Publish the engine snapshot through expvar; /debug/vars comes with
	// the expvar import's default mux registration, so wire the default
	// mux in behind our own routes.
	expvar.Publish("funseeker", expvar.Func(func() any { return eng.Stats() }))
	mux := http.NewServeMux()
	mux.Handle("/v1/", srvHandler)
	mux.Handle("/metrics", srvHandler)
	mux.Handle("/debug/vars", expvar.Handler())

	// The debug listener is opt-in and meant for localhost/management
	// networks: pprof profiles and traces stream from here without
	// exposing them on the public edge.
	if *debugAddr != "" {
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           srv2.debugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug listening", "addr", *debugAddr)
			if err := dsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug listener failed", "err", err)
			}
		}()
		defer dsrv.Close()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "jobs", eng.Jobs(), "cache_bytes", *cacheBytes)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err // bind failure etc.
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Grace expired: hard-close the remaining connections, which
		// cancels their request contexts and stops their sweeps.
		logger.Warn("graceful shutdown expired, closing", "err", err)
		if cerr := srv.Close(); cerr != nil {
			return cerr
		}
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("stopped")
	return nil
}
