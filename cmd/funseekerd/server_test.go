package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/obs"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// testELF compiles one small CET binary once per process.
var testELFOnce = sync.OnceValues(func() ([]byte, error) {
	specs := corpus.Generate(corpus.Coreutils, corpus.Options{Scale: 0.1, Seed: 99, Programs: 1})
	if len(specs) == 0 {
		return nil, fmt.Errorf("corpus generated no specs")
	}
	res, err := synth.Compile(specs[0], synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	if err != nil {
		return nil, err
	}
	return res.Stripped, nil
})

func testELF(t *testing.T) []byte {
	t.Helper()
	raw, err := testELFOnce()
	if err != nil {
		t.Fatalf("building test binary: %v", err)
	}
	return raw
}

// newTestServer spins up an httptest server over a fresh engine, with
// one shared metrics registry spanning both layers (as main wires it).
func newTestServer(t *testing.T, cfg serverConfig) (*httptest.Server, *engine.Engine) {
	t.Helper()
	if cfg.maxBodyBytes == 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	if cfg.registry == nil {
		cfg.registry = obs.NewRegistry()
	}
	eng, err := engine.New(engine.Config{Jobs: 2, Registry: cfg.registry})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng, cfg).handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func postBinary(t *testing.T, url string, raw []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func decodeAnalyze(t *testing.T, body []byte) analyzeResponse {
	t.Helper()
	var ar analyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return ar
}

func TestAnalyzeRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	raw := testELF(t)

	resp, body := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if len(ar.Entries) == 0 {
		t.Fatal("no function entries identified")
	}
	if ar.Cached != false {
		t.Fatalf("first request claims to be cached: %v", ar.Cached)
	}
	if len(ar.SHA256) != 64 {
		t.Fatalf("sha256 = %q", ar.SHA256)
	}
	if ar.Config != 4 {
		t.Fatalf("default config = %d, want 4", ar.Config)
	}

	// Identical bytes again: served from the cache, and the stats say so.
	resp, body = postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d, body %s", resp.StatusCode, body)
	}
	ar2 := decodeAnalyze(t, body)
	if ar2.Cached != "lru" {
		t.Fatalf("second identical request cached = %v, want \"lru\"", ar2.Cached)
	}
	if ar2.ElapsedMS <= 0 {
		t.Fatalf("cached elapsed_ms = %v, want the real (nonzero) wait", ar2.ElapsedMS)
	}
	if len(ar2.Entries) != len(ar.Entries) {
		t.Fatalf("cached entries %d != fresh entries %d", len(ar2.Entries), len(ar.Entries))
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st engine.StatsDoc
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if st.V != 2 {
		t.Fatalf("stats version = %d, want 2", st.V)
	}
	if st.Cache.Hits < 1 || st.Cache.Misses != 1 || st.Engine.Analyzed != 1 {
		t.Fatalf("stats = hits %d misses %d analyzed %d, want ≥1/1/1",
			st.Cache.Hits, st.Cache.Misses, st.Engine.Analyzed)
	}
	if st.Engine.Analysis.Sweep.Computes != 1 {
		t.Fatalf("aggregate sweep computes = %d, want 1", st.Engine.Analysis.Sweep.Computes)
	}
	if st.Server == nil || st.Server.UptimeSeconds <= 0 {
		t.Fatalf("server block = %+v", st.Server)
	}
	if st.Shed == nil || st.Shed.Enabled {
		t.Fatalf("shed block = %+v, want present and disabled", st.Shed)
	}

	// The v1 shim still serves the legacy flat shape.
	legacyResp, err := http.Get(ts.URL + "/v1/stats?v=1")
	if err != nil {
		t.Fatal(err)
	}
	var legacy statsResponse
	if err := json.NewDecoder(legacyResp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	legacyResp.Body.Close()
	if legacy.CacheHits < 1 || legacy.UptimeSeconds <= 0 {
		t.Fatalf("v1 shim = hits %d uptime %v", legacy.CacheHits, legacy.UptimeSeconds)
	}

	// Unknown versions are refused, not silently defaulted.
	badResp, err := http.Get(ts.URL + "/v1/stats?v=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, badResp.Body)
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?v=3 status = %d, want 400", badResp.StatusCode)
	}
}

func TestAnalyzeConfigSelection(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	raw := testELF(t)

	// Config ① (no filtering, no tail calls) vs ④: both succeed and echo
	// their configuration; ① never reports fewer entries than ④ filters to.
	resp1, body1 := postBinary(t, ts.URL+"/v1/analyze?config=1", raw)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("config=1 status = %d, body %s", resp1.StatusCode, body1)
	}
	ar1 := decodeAnalyze(t, body1)
	if ar1.Config != 1 {
		t.Fatalf("echoed config = %d, want 1", ar1.Config)
	}

	resp4, body4 := postBinary(t, ts.URL+"/v1/analyze?config=4", raw)
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("config=4 status = %d, body %s", resp4.StatusCode, body4)
	}
	ar4 := decodeAnalyze(t, body4)
	if ar4.Config != 4 {
		t.Fatalf("echoed config = %d, want 4", ar4.Config)
	}
	if ar4.Cached != false {
		t.Fatal("config=4 shared config=1's cache entry")
	}

	// Out-of-range configuration is a client error.
	resp, body := postBinary(t, ts.URL+"/v1/analyze?config=9", raw)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("config=9 status = %d, body %s", resp.StatusCode, body)
	}
}

func TestAnalyzeRejectsOversizedBody(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{maxBodyBytes: 1024})
	raw := testELF(t)
	if len(raw) <= 1024 {
		t.Fatalf("test binary only %d bytes, need >1024", len(raw))
	}

	resp, body := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s, want 413", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if er.Error == "" {
		t.Fatal("413 without an error message")
	}
}

func TestAnalyzeNotELF(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	resp, body := postBinary(t, ts.URL+"/v1/analyze", []byte("#!/bin/sh\necho not an elf\n"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, body %s, want 422", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "not_elf" {
		t.Fatalf("kind = %q, want not_elf", er.Kind)
	}
}

// TestAnalyzeTimeout proves the request deadline reaches the sweep: with
// a (deliberately absurd) 1ns budget the analysis is canceled inside the
// engine rather than running to completion.
func TestAnalyzeTimeout(t *testing.T) {
	ts, eng := newTestServer(t, serverConfig{reqTimeout: time.Nanosecond})
	raw := testELF(t)

	resp, body := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "deadline" {
		t.Fatalf("kind = %q, want deadline", er.Kind)
	}
	st := eng.Stats()
	if st.Canceled == 0 {
		t.Fatal("engine canceled counter not incremented")
	}
	if st.Analyzed != 0 {
		t.Fatalf("timed-out request still analyzed %d binaries", st.Analyzed)
	}
}

// TestAnalyzeClientCancel exercises mid-request cancellation: the client
// abandons the request and the handler's context unwinds the engine call.
func TestAnalyzeClientCancel(t *testing.T) {
	ts, eng := newTestServer(t, serverConfig{})
	raw := testELF(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("pre-canceled request succeeded")
	}
	if st := eng.Stats(); st.Analyzed != 0 {
		t.Fatalf("canceled request analyzed %d binaries", st.Analyzed)
	}
}

func TestAnalyzeMultipart(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	raw := testELF(t)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("binary", "prog")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(raw); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/analyze", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); len(ar.Entries) == 0 {
		t.Fatal("no entries from multipart upload")
	}

	// A form without the "binary" field is a client error.
	var bad bytes.Buffer
	mw = multipart.NewWriter(&bad)
	fw, _ = mw.CreateFormFile("wrong", "prog")
	fw.Write(raw)
	mw.Close()
	resp, err = http.Post(ts.URL+"/v1/analyze", mw.FormDataContentType(), &bad)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf(`form without "binary": status = %d, want 400`, resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var st map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["status"] != "ok" {
		t.Fatalf("status = %q", st["status"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/analyze status = %d, want 405", resp.StatusCode)
	}
}

// TestAnalyzeMultipartEmptyBinary is the regression test for the
// upload-validation gap: an empty "binary" part must be a clear 400,
// not a confusing 422 not_elf from the engine.
func TestAnalyzeMultipartEmptyBinary(t *testing.T) {
	ts, eng := newTestServer(t, serverConfig{})

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if _, err := mw.CreateFormFile("binary", "prog"); err != nil {
		t.Fatal(err)
	}
	mw.Close() // zero bytes written to the part

	resp, err := http.Post(ts.URL+"/v1/analyze", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s, want 400", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if !strings.Contains(er.Error, "empty") {
		t.Fatalf("error = %q, want a clear empty-part message", er.Error)
	}
	if st := eng.Stats(); st.Requests != 0 {
		t.Fatalf("empty upload reached the engine (%d requests)", st.Requests)
	}
}

// TestMetricsEndpoint drives a few requests and asserts the Prometheus
// exposition carries the acceptance-criteria series: request counters
// by kind, analyze + per-stage histograms, cache counters.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	raw := testELF(t)

	postBinary(t, ts.URL+"/v1/analyze", raw)            // cold
	postBinary(t, ts.URL+"/v1/analyze", raw)            // lru hit
	postBinary(t, ts.URL+"/v1/analyze", []byte("junk")) // 422

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		`funseekerd_http_requests_total{kind="ok"} 2`,
		`funseekerd_http_requests_total{kind="unprocessable"} 1`,
		"funseekerd_http_request_seconds_bucket",
		"funseeker_engine_analyze_seconds_bucket",
		`funseeker_engine_stage_seconds_bucket{stage="sweep"`,
		`funseeker_engine_stage_seconds_bucket{stage="filter"`,
		`funseeker_engine_stage_seconds_bucket{stage="tail-call"`,
		"funseeker_engine_cache_hits_total 1",
		"funseeker_engine_cache_misses_total 1",
		"funseeker_engine_coalesced_total 0",
		// Both cold analyses (the ELF and the junk, which fails only
		// after taking a worker slot) record a queue wait.
		"funseeker_engine_queue_wait_seconds_count 2",
		"funseeker_engine_failures_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRequestIDContract pins the tracing contract: every response
// carries X-Funseeker-Request-Id, error envelopes embed the same ID, a
// well-formed client-supplied ID is adopted, and a hostile one is
// replaced.
func TestRequestIDContract(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})

	// Generated ID on a success path.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get(obs.RequestIDHeader)
	if !obs.ValidRequestID(id) {
		t.Fatalf("healthz request ID %q invalid", id)
	}

	// Error envelope embeds the header's ID.
	resp, body := postBinary(t, ts.URL+"/v1/analyze", []byte("junk"))
	hdrID := resp.Header.Get(obs.RequestIDHeader)
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if er.RequestID == "" || er.RequestID != hdrID {
		t.Fatalf("error envelope request_id = %q, header %q; want matching non-empty", er.RequestID, hdrID)
	}

	// A well-formed client ID round-trips.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "client-trace-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "client-trace-42" {
		t.Fatalf("client-supplied ID not adopted: %q", got)
	}

	// A hostile client ID is replaced, not echoed.
	req.Header.Set(obs.RequestIDHeader, "bad id\"with junk")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got == "" || strings.Contains(got, " ") {
		t.Fatalf("hostile ID handling produced %q", got)
	}
}

// TestAccessLogCarriesRequestID asserts the access-log line (and the
// slow-request WARN line) carry the request ID.
func TestAccessLogCarriesRequestID(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(syncWriter{&mu, &buf}, nil))
	ts, _ := newTestServer(t, serverConfig{logger: logger, slowThreshold: time.Nanosecond})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "log-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "request_id=log-trace-1") {
		t.Fatalf("access log missing request ID:\n%s", out)
	}
	if !strings.Contains(out, "slow request") {
		t.Fatalf("1ns threshold did not trigger a slow-request line:\n%s", out)
	}
}

// syncWriter serializes the test logger against concurrent handlers.
type syncWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestStatusWriterFlushAndUnwrap: the access-log wrapper must not hide
// the underlying Flusher (pprof streaming) or defeat
// http.ResponseController.
func TestStatusWriterFlushAndUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}

	f, ok := any(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}

	rec2 := httptest.NewRecorder()
	sw2 := &statusWriter{ResponseWriter: rec2, status: http.StatusOK}
	if err := http.NewResponseController(sw2).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush through Unwrap: %v", err)
	}
	if !rec2.Flushed {
		t.Fatal("ResponseController flush did not reach the underlying writer")
	}

	// A non-Flusher underlying writer must not panic.
	(&statusWriter{ResponseWriter: plainWriter{}}).Flush()
}

// plainWriter is a ResponseWriter with no optional interfaces.
type plainWriter struct{}

func (plainWriter) Header() http.Header         { return http.Header{} }
func (plainWriter) Write(p []byte) (int, error) { return len(p), nil }
func (plainWriter) WriteHeader(int)             {}

// TestDebugHandlerPprof smoke-checks the opt-in debug surface: the
// pprof index and /metrics respond through the tracing middleware.
func TestDebugHandlerPprof(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := engine.New(engine.Config{Jobs: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, serverConfig{maxBodyBytes: 1 << 20, registry: reg})
	ts := httptest.NewServer(s.debugHandler())
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/metrics", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if resp.Header.Get(obs.RequestIDHeader) == "" {
			t.Fatalf("GET %s: no request ID header", path)
		}
	}
}
