package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// testELF compiles one small CET binary once per process.
var testELFOnce = sync.OnceValues(func() ([]byte, error) {
	specs := corpus.Generate(corpus.Coreutils, corpus.Options{Scale: 0.1, Seed: 99, Programs: 1})
	if len(specs) == 0 {
		return nil, fmt.Errorf("corpus generated no specs")
	}
	res, err := synth.Compile(specs[0], synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
	if err != nil {
		return nil, err
	}
	return res.Stripped, nil
})

func testELF(t *testing.T) []byte {
	t.Helper()
	raw, err := testELFOnce()
	if err != nil {
		t.Fatalf("building test binary: %v", err)
	}
	return raw
}

// newTestServer spins up an httptest server over a fresh engine.
func newTestServer(t *testing.T, cfg serverConfig) (*httptest.Server, *engine.Engine) {
	t.Helper()
	if cfg.maxBodyBytes == 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	eng := engine.New(engine.Config{Jobs: 2})
	ts := httptest.NewServer(newServer(eng, cfg))
	t.Cleanup(ts.Close)
	return ts, eng
}

func postBinary(t *testing.T, url string, raw []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func decodeAnalyze(t *testing.T, body []byte) analyzeResponse {
	t.Helper()
	var ar analyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return ar
}

func TestAnalyzeRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	raw := testELF(t)

	resp, body := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if len(ar.Entries) == 0 {
		t.Fatal("no function entries identified")
	}
	if ar.Cached {
		t.Fatal("first request claims to be cached")
	}
	if len(ar.SHA256) != 64 {
		t.Fatalf("sha256 = %q", ar.SHA256)
	}
	if ar.Config != 4 {
		t.Fatalf("default config = %d, want 4", ar.Config)
	}

	// Identical bytes again: served from the cache, and the stats say so.
	resp, body = postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d, body %s", resp.StatusCode, body)
	}
	ar2 := decodeAnalyze(t, body)
	if !ar2.Cached {
		t.Fatal("second identical request was not served from cache")
	}
	if len(ar2.Entries) != len(ar.Entries) {
		t.Fatalf("cached entries %d != fresh entries %d", len(ar2.Entries), len(ar.Entries))
	}

	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if st.CacheHits < 1 || st.CacheMisses != 1 || st.Analyzed != 1 {
		t.Fatalf("stats = hits %d misses %d analyzed %d, want ≥1/1/1", st.CacheHits, st.CacheMisses, st.Analyzed)
	}
	if st.Analysis.Sweep.Computes != 1 {
		t.Fatalf("aggregate sweep computes = %d, want 1", st.Analysis.Sweep.Computes)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
}

func TestAnalyzeConfigSelection(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	raw := testELF(t)

	// Config ① (no filtering, no tail calls) vs ④: both succeed and echo
	// their configuration; ① never reports fewer entries than ④ filters to.
	resp1, body1 := postBinary(t, ts.URL+"/v1/analyze?config=1", raw)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("config=1 status = %d, body %s", resp1.StatusCode, body1)
	}
	ar1 := decodeAnalyze(t, body1)
	if ar1.Config != 1 {
		t.Fatalf("echoed config = %d, want 1", ar1.Config)
	}

	resp4, body4 := postBinary(t, ts.URL+"/v1/analyze?config=4", raw)
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("config=4 status = %d, body %s", resp4.StatusCode, body4)
	}
	ar4 := decodeAnalyze(t, body4)
	if ar4.Config != 4 {
		t.Fatalf("echoed config = %d, want 4", ar4.Config)
	}
	if ar4.Cached {
		t.Fatal("config=4 shared config=1's cache entry")
	}

	// Out-of-range configuration is a client error.
	resp, body := postBinary(t, ts.URL+"/v1/analyze?config=9", raw)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("config=9 status = %d, body %s", resp.StatusCode, body)
	}
}

func TestAnalyzeRejectsOversizedBody(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{maxBodyBytes: 1024})
	raw := testELF(t)
	if len(raw) <= 1024 {
		t.Fatalf("test binary only %d bytes, need >1024", len(raw))
	}

	resp, body := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s, want 413", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if er.Error == "" {
		t.Fatal("413 without an error message")
	}
}

func TestAnalyzeNotELF(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	resp, body := postBinary(t, ts.URL+"/v1/analyze", []byte("#!/bin/sh\necho not an elf\n"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, body %s, want 422", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "not_elf" {
		t.Fatalf("kind = %q, want not_elf", er.Kind)
	}
}

// TestAnalyzeTimeout proves the request deadline reaches the sweep: with
// a (deliberately absurd) 1ns budget the analysis is canceled inside the
// engine rather than running to completion.
func TestAnalyzeTimeout(t *testing.T) {
	ts, eng := newTestServer(t, serverConfig{reqTimeout: time.Nanosecond})
	raw := testELF(t)

	resp, body := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "deadline" {
		t.Fatalf("kind = %q, want deadline", er.Kind)
	}
	st := eng.Stats()
	if st.Canceled == 0 {
		t.Fatal("engine canceled counter not incremented")
	}
	if st.Analyzed != 0 {
		t.Fatalf("timed-out request still analyzed %d binaries", st.Analyzed)
	}
}

// TestAnalyzeClientCancel exercises mid-request cancellation: the client
// abandons the request and the handler's context unwinds the engine call.
func TestAnalyzeClientCancel(t *testing.T) {
	ts, eng := newTestServer(t, serverConfig{})
	raw := testELF(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("pre-canceled request succeeded")
	}
	if st := eng.Stats(); st.Analyzed != 0 {
		t.Fatalf("canceled request analyzed %d binaries", st.Analyzed)
	}
}

func TestAnalyzeMultipart(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	raw := testELF(t)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("binary", "prog")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(raw); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/analyze", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ar := decodeAnalyze(t, body); len(ar.Entries) == 0 {
		t.Fatal("no entries from multipart upload")
	}

	// A form without the "binary" field is a client error.
	var bad bytes.Buffer
	mw = multipart.NewWriter(&bad)
	fw, _ = mw.CreateFormFile("wrong", "prog")
	fw.Write(raw)
	mw.Close()
	resp, err = http.Post(ts.URL+"/v1/analyze", mw.FormDataContentType(), &bad)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf(`form without "binary": status = %d, want 400`, resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var st map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["status"] != "ok" {
		t.Fatalf("status = %q", st["status"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/analyze status = %d, want 405", resp.StatusCode)
	}
}
