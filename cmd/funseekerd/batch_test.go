package main

import (
	"archive/tar"
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/funseeker/funseeker/internal/corpus"
	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/obs"
	"github.com/funseeker/funseeker/internal/store"
	"github.com/funseeker/funseeker/internal/synth"
	"github.com/funseeker/funseeker/internal/x86"
)

// testELFsOnce compiles a small pool of distinct CET binaries once per
// process; tests slice what they need.
var testELFsOnce = sync.OnceValues(func() ([][]byte, error) {
	specs := corpus.Generate(corpus.Coreutils, corpus.Options{Scale: 0.1, Seed: 41, Programs: 4})
	var out [][]byte
	for _, spec := range specs {
		res, err := synth.Compile(spec, synth.Config{Compiler: synth.GCC, Mode: x86.Mode64, Opt: synth.O2})
		if err != nil {
			return nil, err
		}
		out = append(out, res.Stripped)
	}
	if len(out) < 4 {
		return nil, fmt.Errorf("corpus generated %d programs, want 4", len(out))
	}
	return out, nil
})

func testELFs(t *testing.T, n int) [][]byte {
	t.Helper()
	all, err := testELFsOnce()
	if err != nil {
		t.Fatalf("building test binaries: %v", err)
	}
	if n > len(all) {
		t.Fatalf("test pool has %d binaries, want %d", len(all), n)
	}
	return all[:n]
}

// newTestServerEngine is newTestServer with control over the engine
// configuration (jobs width, persistent store).
func newTestServerEngine(t *testing.T, engCfg engine.Config, cfg serverConfig) (*httptest.Server, *engine.Engine) {
	t.Helper()
	if cfg.maxBodyBytes == 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	if cfg.registry == nil {
		cfg.registry = obs.NewRegistry()
	}
	engCfg.Registry = cfg.registry
	eng, err := engine.New(engCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(newServer(eng, cfg).handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// tarMember is one archive entry for the test builders.
type tarMember struct {
	name string
	data []byte
}

func tarArchive(t *testing.T, members []tarMember) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, m := range members {
		if err := tw.WriteHeader(&tar.Header{Name: m.name, Mode: 0o644, Size: int64(len(m.data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(m.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postBatch posts body as a tar batch and returns the decoded NDJSON
// stream: the per-member records and the trailing summary.
func postBatch(t *testing.T, url string, body []byte) ([]batchRecord, batchSummary, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/x-tar", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status = %d, body %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q, want application/x-ndjson", ct)
	}
	return decodeNDJSON(t, resp.Body), batchSummaryOf(t, resp), resp
}

// decodeNDJSON splits the stream into member records, stashing the
// summary on the response via batchSummaryOf's package-level capture.
var lastSummary batchSummary

func decodeNDJSON(t *testing.T, r io.Reader) []batchRecord {
	t.Helper()
	var recs []batchRecord
	lastSummary = batchSummary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Summary {
			if err := json.Unmarshal(line, &lastSummary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var rec batchRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func batchSummaryOf(t *testing.T, _ *http.Response) batchSummary {
	t.Helper()
	return lastSummary
}

// TestBatchTarRoundTrip: a mixed archive — four distinct ELFs, one
// duplicate, one junk member — comes back as six in-order records with
// the junk isolated to its own error record, plus an accurate summary.
func TestBatchTarRoundTrip(t *testing.T) {
	ts, eng := newTestServerEngine(t, engine.Config{Jobs: 2}, serverConfig{})
	bins := testELFs(t, 4)
	members := []tarMember{
		{"bin/a", bins[0]},
		{"bin/b", bins[1]},
		{"bin/junk", []byte("this is not an ELF image at all")},
		{"bin/c", bins[2]},
		{"bin/a-again", bins[0]},
		{"bin/d", bins[3]},
	}
	recs, sum, _ := postBatch(t, ts.URL, tarArchive(t, members))

	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("record %d carries index %d — stream out of order", i, rec.Index)
		}
		if rec.Name != members[i].name {
			t.Fatalf("record %d name %q, want %q", i, rec.Name, members[i].name)
		}
	}
	if recs[2].Error == "" || recs[2].Kind != "not_elf" || recs[2].Result != nil {
		t.Fatalf("junk member record = %+v, want an isolated not_elf error", recs[2])
	}
	for _, i := range []int{0, 1, 3, 4, 5} {
		if recs[i].Result == nil || recs[i].Error != "" {
			t.Fatalf("member %d record = %+v, want a result", i, recs[i])
		}
		if len(recs[i].Result.Entries) == 0 {
			t.Fatalf("member %d: empty entries", i)
		}
	}
	// The duplicate pair shares one cold run: exactly one of the two is
	// fresh, the other served by a fast path (lru or coalesced —
	// whichever entered the engine first leads, which the scheduler
	// decides).
	aCold := recs[0].Result.Cached == false
	dupCold := recs[4].Result.Cached == false
	if aCold == dupCold {
		t.Fatalf("duplicate pair cached = %v / %v, want exactly one cold run",
			recs[0].Result.Cached, recs[4].Result.Cached)
	}
	if sum.Items != 6 || sum.OK != 5 || sum.Errors != 1 || sum.Truncated || sum.Canceled {
		t.Fatalf("summary = %+v, want 6 items / 5 ok / 1 error, clean end", sum)
	}
	st := eng.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after batch", st.InFlight)
	}
	if st.Analyzed != 4 {
		t.Fatalf("analyzed = %d, want one cold run per distinct binary", st.Analyzed)
	}
}

// TestBatchMultipart: the same stream over a multipart form upload.
func TestBatchMultipart(t *testing.T) {
	ts, _ := newTestServerEngine(t, engine.Config{Jobs: 2}, serverConfig{})
	bins := testELFs(t, 2)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, raw := range bins {
		fw, err := mw.CreateFormFile("binary", fmt.Sprintf("prog-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(raw)
	}
	mw.WriteField("note", "not a file, skipped")
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	recs := decodeNDJSON(t, resp.Body)
	sum := lastSummary
	if len(recs) != 2 || sum.OK != 2 || sum.Errors != 0 {
		t.Fatalf("multipart batch: %d records, summary %+v", len(recs), sum)
	}
	if recs[0].Name != "prog-0" || recs[1].Name != "prog-1" {
		t.Fatalf("names = %q, %q", recs[0].Name, recs[1].Name)
	}
}

// TestBatchCorruptArchiveFraming: a valid member followed by framing
// garbage yields the valid member's result, one "archive" error
// record, and a summary marked truncated — the handler neither aborts
// the stream on the first sign of damage nor pretends it read it all.
func TestBatchCorruptArchiveFraming(t *testing.T) {
	ts, _ := newTestServerEngine(t, engine.Config{Jobs: 2}, serverConfig{})
	raw := testELFs(t, 1)[0]

	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	if err := tw.WriteHeader(&tar.Header{Name: "good", Mode: 0o644, Size: int64(len(raw))}); err != nil {
		t.Fatal(err)
	}
	tw.Write(raw)
	if err := tw.Flush(); err != nil { // pad to the block boundary, no end-of-archive trailer
		t.Fatal(err)
	}
	buf.Write(bytes.Repeat([]byte{0xFF}, 1024)) // garbage where the next header should be

	recs, sum, _ := postBatch(t, ts.URL, buf.Bytes())
	if len(recs) != 2 {
		t.Fatalf("got %d records, want good + archive-error", len(recs))
	}
	if recs[0].Result == nil || recs[0].Name != "good" {
		t.Fatalf("first record = %+v, want the valid member's result", recs[0])
	}
	if recs[1].Kind != "archive" || recs[1].Error == "" {
		t.Fatalf("second record = %+v, want an archive framing error", recs[1])
	}
	if !sum.Truncated || sum.OK != 1 || sum.Errors != 1 {
		t.Fatalf("summary = %+v, want truncated with 1 ok / 1 error", sum)
	}
}

// TestBatchClientDisconnectNoLeak is the chaos case: the client walks
// away mid-stream. The handler must cancel what's in flight and fully
// unwind — no stuck goroutines, no in-flight analyses, and the engine
// counter-pinning invariant intact afterwards.
func TestBatchClientDisconnectNoLeak(t *testing.T) {
	ts, eng := newTestServerEngine(t, engine.Config{Jobs: 1, CacheBytes: -1}, serverConfig{})
	bins := testELFs(t, 4)
	baseline := runtime.NumGoroutine()

	// Stream the archive through a pipe we never finish, so the batch
	// is genuinely mid-flight when the context dies.
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-tar")

	go func() {
		tw := tar.NewWriter(pw)
		for i, raw := range bins {
			if err := tw.WriteHeader(&tar.Header{Name: fmt.Sprintf("bin-%d", i), Mode: 0o644, Size: int64(len(raw))}); err != nil {
				return
			}
			if _, err := tw.Write(raw); err != nil {
				return
			}
			tw.Flush()
		}
		// ...and then stall: never Close, never EOF.
	}()

	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one record to prove the stream was live, then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first record: %v", err)
	}
	cancel()
	resp.Body.Close()
	pw.CloseWithError(context.Canceled)

	// The server side must quiesce: no in-flight work, no leaked
	// goroutines (poll — unwinding is asynchronous).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := eng.Stats()
		if st.InFlight == 0 && runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after disconnect: in-flight %d, goroutines %d (baseline %d)",
				st.InFlight, runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := eng.Stats()
	sum := st.CacheHits + st.StoreHits + st.CacheMisses + st.Coalesced + st.Canceled + st.Failures
	if sum != st.Requests {
		t.Fatalf("counter pinning broken after disconnect: sum %d != requests %d", sum, st.Requests)
	}
}

// TestShedRetryAfter: with a 1ns queue-wait bound (cumulative window),
// the first cold analysis records a real queue wait and every later
// request — single-shot or batch — is refused with 429 + Retry-After.
func TestShedRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _ := newTestServerEngine(t,
		engine.Config{Jobs: 1, ShedQueueP99: time.Nanosecond, ShedWindow: -1},
		serverConfig{registry: reg})
	raw := testELFs(t, 1)[0]

	// Histogram empty: the first request is admitted and seeds it.
	resp, _ := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming request status = %d", resp.StatusCode)
	}

	resp, body := postBinary(t, ts.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 under saturation", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive back-off", ra)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != "overloaded" {
		t.Fatalf("shed envelope = %s (err %v), want kind overloaded", body, err)
	}

	// Batches are refused at the door too.
	resp2, err := http.Post(ts.URL+"/v1/batch", "application/x-tar",
		bytes.NewReader(tarArchive(t, []tarMember{{"a", raw}})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch status = %d, want 429", resp2.StatusCode)
	}

	// The refusals are visible at the scrape and counted as "shed".
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	if !strings.Contains(text, "funseekerd_shed_total 2") {
		t.Fatalf("/metrics missing shed counter:\n%s", grepLines(text, "shed"))
	}
	if !strings.Contains(text, `funseekerd_http_requests_total{kind="shed"} 2`) {
		t.Fatalf("/metrics missing shed request kind:\n%s", grepLines(text, "requests_total"))
	}
}

// TestBatchStoreTierVisible: a batch against a store-backed engine,
// then the same batch after a "restart" (new engine + server over the
// same store dir) — every record comes back cached:"store", and the
// stats/metrics surfaces account the store tier separately from the
// LRU.
func TestBatchStoreTierVisible(t *testing.T) {
	dir := t.TempDir()
	bins := testELFs(t, 3)
	archive := tarArchive(t, []tarMember{{"a", bins[0]}, {"b", bins[1]}, {"c", bins[2]}})

	open := func() (*httptest.Server, *engine.Engine, *store.Store) {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		ts, eng := newTestServerEngine(t, engine.Config{Jobs: 2, Store: st}, serverConfig{})
		return ts, eng, st
	}

	ts1, _, _ := open()
	recs, sum, _ := postBatch(t, ts1.URL, archive)
	if sum.OK != 3 {
		t.Fatalf("first pass summary = %+v", sum)
	}
	for _, rec := range recs {
		if rec.Result.Cached != false {
			t.Fatalf("first pass record cached = %v, want cold", rec.Result.Cached)
		}
	}
	ts1.Close()

	ts2, _, _ := open()
	recs, sum, _ = postBatch(t, ts2.URL, archive)
	if sum.OK != 3 {
		t.Fatalf("second pass summary = %+v", sum)
	}
	for i, rec := range recs {
		if rec.Result.Cached != "store" {
			t.Fatalf("record %d after restart cached = %v, want \"store\"", i, rec.Result.Cached)
		}
	}

	// /v1/stats separates the tiers.
	resp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats engine.StatsDoc
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Store == nil {
		t.Fatal("/v1/stats has no store block")
	}
	if stats.Store.Hits != 3 || stats.Cache.Hits != 0 {
		t.Fatalf("/v1/stats store hits=%d cache hits=%d, want 3/0", stats.Store.Hits, stats.Cache.Hits)
	}
	if stats.Store.Records != 3 {
		t.Fatalf("/v1/stats store block = %+v, want 3 records", stats.Store)
	}

	// /metrics exposes the tier as its own series.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"funseeker_engine_store_hits_total 3",
		"funseeker_engine_store_records 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, grepLines(text, "store"))
		}
	}
}

// TestBatchOversizedMember: a member over the per-binary cap becomes a
// too_large error record; its neighbors still analyze.
func TestBatchOversizedMember(t *testing.T) {
	ts, _ := newTestServerEngine(t, engine.Config{Jobs: 2}, serverConfig{maxBodyBytes: 1 << 20})
	raw := testELFs(t, 1)[0]
	big := bytes.Repeat([]byte{0x90}, (1<<20)+1)
	recs, sum, _ := postBatch(t, ts.URL, tarArchive(t, []tarMember{
		{"fine", raw}, {"huge", big}, {"fine2", raw},
	}))
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[1].Kind != "too_large" {
		t.Fatalf("oversized record = %+v, want too_large", recs[1])
	}
	if recs[0].Result == nil || recs[2].Result == nil {
		t.Fatal("neighbors of the oversized member did not analyze")
	}
	if sum.OK != 2 || sum.Errors != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

// grepLines filters text to lines containing needle, for terse failure
// output.
func grepLines(text, needle string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
