package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/store"
)

// TestAnalyzeOptionsStrict drives the shared query parser through both
// endpoints that use it: a typo'd or malformed option must be a
// structured 400 on /v1/analyze AND /v1/batch, never a silent analysis
// under different options than the client asked for.
func TestAnalyzeOptionsStrict(t *testing.T) {
	ts, _ := newTestServerEngine(t, engine.Config{Jobs: 2}, serverConfig{})
	raw := testELFs(t, 1)[0]
	archive := tarArchive(t, []tarMember{{"a", raw}})

	cases := []struct {
		name       string
		query      string
		wantStatus int
	}{
		{"defaults", "", http.StatusOK},
		{"all valid", "?config=2&superset=1&require_cet=0&arch=x86-64", http.StatusOK},
		{"bool spellings", "?superset=yes&require_cet=false", http.StatusOK},
		{"unknown key", "?supserset=1", http.StatusBadRequest},
		{"config out of range", "?config=9", http.StatusBadRequest},
		{"config not a number", "?config=four", http.StatusBadRequest},
		{"bad bool", "?superset=maybe", http.StatusBadRequest},
		{"bad arch", "?arch=mips", http.StatusBadRequest},
	}
	endpoints := []struct {
		name, path, contentType string
		body                    []byte
	}{
		{"analyze", "/v1/analyze", "application/octet-stream", raw},
		{"batch", "/v1/batch", "application/x-tar", archive},
	}
	for _, ep := range endpoints {
		for _, tc := range cases {
			t.Run(ep.name+"/"+tc.name, func(t *testing.T) {
				resp, err := http.Post(ts.URL+ep.path+tc.query, ep.contentType, bytes.NewReader(ep.body))
				if err != nil {
					t.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != tc.wantStatus {
					t.Fatalf("%s%s = %d, want %d (body %s)", ep.path, tc.query, resp.StatusCode, tc.wantStatus, body)
				}
				if tc.wantStatus == http.StatusBadRequest {
					var er errorResponse
					if err := json.Unmarshal(body, &er); err != nil || er.Kind != "bad_request" {
						t.Fatalf("envelope = %s (err %v), want kind bad_request", body, err)
					}
				}
			})
		}
	}
}

// TestResultTransferRoundTrip is the replica-transfer path end to end,
// exactly as funseeker-lb drives it: node A computes a result and
// exposes it under its store key; the raw value is copied to node B
// with PUT /v1/result; B then serves the same binary warm — from its
// caches, with zero fresh analyses — and lists the key in /v1/keys.
func TestResultTransferRoundTrip(t *testing.T) {
	raw := testELFs(t, 1)[0]
	tsA, _ := newTestServerEngine(t, engine.Config{Jobs: 2, StoreDir: t.TempDir()}, serverConfig{})
	tsB, engB := newTestServerEngine(t, engine.Config{Jobs: 2, StoreDir: t.TempDir()}, serverConfig{})

	// Node A computes; the response names the stored result.
	resp, body := postBinary(t, tsA.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze on A = %d, body %s", resp.StatusCode, body)
	}
	key := resp.Header.Get(storeKeyHeader)
	if len(key) != 68 { // 34 key bytes, hex
		t.Fatalf("%s = %q, want 68 hex chars", storeKeyHeader, key)
	}

	// Fetch the stored value from A.
	vresp, err := http.Get(tsA.URL + "/v1/result?key=" + key)
	if err != nil {
		t.Fatal(err)
	}
	val, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK || len(val) == 0 {
		t.Fatalf("GET /v1/result on A = %d (%d bytes)", vresp.StatusCode, len(val))
	}

	// A key nobody stored is a clean 404, not an error.
	missing := strings.Repeat("ab", 34)
	mresp, err := http.Get(tsA.URL + "/v1/result?key=" + missing)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing key = %d, want 404", mresp.StatusCode)
	}

	// Install it on B.
	preq, err := http.NewRequest(http.MethodPut, tsB.URL+"/v1/result?key="+key, bytes.NewReader(val))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/result on B = %d, body %s", presp.StatusCode, pbody)
	}

	// Installing under a mislabeled key must be refused — that's the
	// poisoning guard.
	wreq, _ := http.NewRequest(http.MethodPut, tsB.URL+"/v1/result?key="+missing, bytes.NewReader(val))
	wresp, err := http.DefaultClient.Do(wreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT under wrong key = %d, want 400", wresp.StatusCode)
	}

	// B lists the key.
	kresp, err := http.Get(tsB.URL + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	var kr keysResponse
	if err := json.NewDecoder(kresp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	kresp.Body.Close()
	if kr.Count != 1 || len(kr.Keys) != 1 || kr.Keys[0] != key {
		t.Fatalf("/v1/keys on B = %+v, want exactly %q", kr, key)
	}

	// B serves the binary warm: no fresh analysis ran.
	resp, body = postBinary(t, tsB.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze on B = %d, body %s", resp.StatusCode, body)
	}
	ar := decodeAnalyze(t, body)
	if ar.Cached == false {
		t.Fatalf("B recomputed the transferred result (cached = %v)", ar.Cached)
	}
	if resp.Header.Get(storeKeyHeader) != key {
		t.Fatalf("B's store key header = %q, want %q", resp.Header.Get(storeKeyHeader), key)
	}
	if st := engB.Stats(); st.Analyzed != 0 || st.StoreInjected != 1 {
		t.Fatalf("B stats analyzed=%d injected=%d, want 0/1", st.Analyzed, st.StoreInjected)
	}
}

// TestAdminCompactEndpoint superseded-key garbage is reclaimable over
// HTTP: re-injecting a key twice leaves a stale record behind, and
// POST /v1/admin/compact rewrites it away without losing the live one.
func TestAdminCompactEndpoint(t *testing.T) {
	raw := testELFs(t, 1)[0]
	// Tiny segments so the records land in cold segments Compact can touch.
	tsA, _ := newTestServerEngine(t, engine.Config{
		Jobs: 2, StoreDir: t.TempDir(), StoreSegmentBytes: 256, StoreCompactEvery: -1,
	}, serverConfig{})

	resp, body := postBinary(t, tsA.URL+"/v1/analyze", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d, body %s", resp.StatusCode, body)
	}
	key := resp.Header.Get(storeKeyHeader)
	vresp, err := http.Get(tsA.URL + "/v1/result?key=" + key)
	if err != nil {
		t.Fatal(err)
	}
	val, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()

	// Re-install the same key a few times: same live set, growing garbage.
	for i := 0; i < 4; i++ {
		preq, _ := http.NewRequest(http.MethodPut, tsA.URL+"/v1/result?key="+key, bytes.NewReader(val))
		presp, err := http.DefaultClient.Do(preq)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, presp.Body)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %d = %d", i, presp.StatusCode)
		}
	}

	cresp, err := http.Post(tsA.URL+"/v1/admin/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr store.CompactResult
	if err := json.NewDecoder(cresp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("compact = %d", cresp.StatusCode)
	}
	if cr.ReclaimedBytes <= 0 {
		t.Fatalf("compact reclaimed %d bytes, want > 0 (result %+v)", cr.ReclaimedBytes, cr)
	}

	// The live result is still served.
	vresp2, err := http.Get(tsA.URL + "/v1/result?key=" + key)
	if err != nil {
		t.Fatal(err)
	}
	val2, _ := io.ReadAll(vresp2.Body)
	vresp2.Body.Close()
	if vresp2.StatusCode != http.StatusOK || !bytes.Equal(val, val2) {
		t.Fatalf("post-compact GET = %d, value match %v", vresp2.StatusCode, bytes.Equal(val, val2))
	}
}

// TestReplicaEndpointsWithoutStore: a storeless node answers the whole
// replica surface with 404 kind no_store — the router treats it as
// having nothing, not as broken.
func TestReplicaEndpointsWithoutStore(t *testing.T) {
	ts, _ := newTestServerEngine(t, engine.Config{Jobs: 1}, serverConfig{})
	key := strings.Repeat("ab", 34)

	check := func(method, path string, body io.Reader) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		rbody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", method, path, resp.StatusCode)
		}
		var er errorResponse
		if err := json.Unmarshal(rbody, &er); err != nil || er.Kind != "no_store" {
			t.Fatalf("%s %s envelope = %s, want kind no_store", method, path, rbody)
		}
	}
	check(http.MethodGet, "/v1/result?key="+key, nil)
	check(http.MethodPut, "/v1/result?key="+key, strings.NewReader("{}"))
	check(http.MethodGet, "/v1/keys", nil)
	check(http.MethodPost, "/v1/admin/compact", nil)
}
