package main

import (
	"archive/tar"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"time"

	"github.com/funseeker/funseeker/internal/engine"
)

// batchRecord is one NDJSON line of a /v1/batch response: exactly one
// of Result or Error is set. Index is the member's position in the
// uploaded archive — records are emitted strictly in index order, so a
// client can zip its manifest against the stream without buffering.
type batchRecord struct {
	Index int    `json:"index"`
	Name  string `json:"name,omitempty"`
	// Error/Kind mirror the single-shot error envelope: Kind is the
	// stable taxonomy sentinel ("not_elf", "not_cet", ...) clients
	// branch on. A member's failure never aborts the stream.
	Error  string           `json:"error,omitempty"`
	Kind   string           `json:"kind,omitempty"`
	Result *analyzeResponse `json:"result,omitempty"`
	// StoreKey is the hex persistent-store key of this member's result
	// — the batch-stream equivalent of the X-Funseeker-Store-Key
	// header, so a proxy can replicate every member without recomputing
	// content hashes. Empty on error records and storeless replicas.
	StoreKey string `json:"store_key,omitempty"`
}

// batchSummary is the final NDJSON line: totals for the whole batch.
// Truncated is set when the archive itself was unreadable past some
// point (framing damage) — per-member failures do not set it.
type batchSummary struct {
	Summary   bool    `json:"summary"`
	Items     int     `json:"items"`
	OK        int     `json:"ok"`
	Errors    int     `json:"errors"`
	Truncated bool    `json:"truncated,omitempty"`
	Canceled  bool    `json:"canceled,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// batchOutcome is what one member's analysis resolved to.
type batchOutcome struct {
	res *engine.Result
	err error
}

// batchJob is one archive member in flight: the producer enqueues it,
// a per-member goroutine resolves done (buffered, so the resolver
// never blocks and never leaks even if the consumer bails), and the
// consumer emits its record in order.
type batchJob struct {
	index int
	name  string
	// skip short-circuits members rejected before analysis (empty,
	// oversized) with a prebuilt error record.
	skip *batchRecord
	done chan batchOutcome
}

// handleBatch implements POST /v1/batch: a tar archive (or multipart
// form) of ELF images in, an NDJSON stream of per-member records out,
// one line per member in archive order, then one summary line.
//
// Concurrency and backpressure: members are analyzed up to 2×jobs at a
// time. The producer (archive reader) blocks once that window is full,
// which stops reading the request body, which backpressures the
// uploader through TCP — a slow analysis pipeline slows the upload
// instead of buffering the whole archive in memory.
//
// Cancellation: if the client disconnects mid-stream, the request
// context cancels every in-flight member analysis; the handler drains
// what was already launched and returns. Per-member error isolation:
// a member that fails (not ELF, truncated, over the per-member size
// cap) produces an error record and the stream continues.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if retry, shed := s.shed.overloaded(); shed {
		s.shedTotal.Inc()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds())))
		writeErrorKind(w, r, http.StatusTooManyRequests,
			errors.New("queue-wait p99 over the shed bound; retry later"), "overloaded")
		return
	}
	opts, configN, err := parseAnalyzeOptions(r.URL.Query())
	if err != nil {
		writeErrorKind(w, r, http.StatusBadRequest, err, "bad_request")
		return
	}
	next, drain, err := s.batchIterator(w, r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	// Leave the request body at EOF (or error) before returning: in
	// full-duplex mode the server's own end-of-request cleanup must not
	// find a half-read body. Instant on the clean path, capped by
	// maxBatchBytes on the damaged-archive path, and an immediate error
	// once the client is gone.
	defer drain()

	// Batch is a full-duplex handler: the producer is still reading the
	// archive off the request body while the consumer streams records
	// back. Without this, the HTTP/1 server drains the unread body
	// before the first response write — swallowing archive members (or
	// blocking forever on a stalled uploader) the moment we flush.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}

	// The stream starts here: everything after this line is NDJSON
	// records, errors included.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	window := 2 * s.eng.Jobs()
	if window < 2 {
		window = 2
	}
	jobs := make(chan *batchJob, window)
	truncated := make(chan bool, 1)

	// Producer: walk the archive, launch one analysis per member.
	go func() {
		defer close(jobs)
		index := 0
		for {
			name, data, rerr := next()
			if rerr == io.EOF {
				truncated <- false
				return
			}
			if rerr != nil {
				// Archive framing damage: past this point there is no
				// trustworthy member boundary, so the walk must stop —
				// but everything already enqueued still completes.
				truncated <- true
				select {
				case jobs <- &batchJob{index: index, skip: &batchRecord{
					Index: index,
					Error: fmt.Sprintf("archive unreadable: %v", rerr),
					Kind:  "archive",
				}}:
				case <-ctx.Done():
				}
				return
			}
			job := &batchJob{index: index, name: name, done: make(chan batchOutcome, 1)}
			if len(data) == 0 {
				job.skip = &batchRecord{Index: index, Name: name, Error: "empty member", Kind: "empty"}
			} else if int64(len(data)) > s.cfg.maxBodyBytes {
				job.skip = &batchRecord{Index: index, Name: name,
					Error: fmt.Sprintf("member exceeds the %d-byte per-binary limit", s.cfg.maxBodyBytes),
					Kind:  "too_large"}
			}
			select {
			case jobs <- job:
			case <-ctx.Done():
				truncated <- true
				return
			}
			if job.skip == nil {
				go func(raw []byte) {
					res, aerr := s.eng.Analyze(ctx, raw, opts)
					job.done <- batchOutcome{res: res, err: aerr}
				}(data)
			}
			index++
		}
	}()

	// Consumer: emit records strictly in archive order.
	var items, ok, errs int
	clientGone := false
	for job := range jobs {
		rec := job.skip
		if rec == nil {
			out := <-job.done
			rec = s.batchRecordFor(job, out, configN)
		}
		items++
		if rec.Error != "" {
			errs++
			s.batchItems.With("error").Inc()
		} else {
			ok++
			s.batchItems.With("ok").Inc()
		}
		if clientGone {
			continue // draining: outcomes are awaited, records unsendable
		}
		if werr := enc.Encode(rec); werr != nil {
			// The client is gone. Cancel the in-flight analyses and keep
			// draining so every launched member resolves before we return.
			clientGone = true
			cancel()
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if clientGone {
		return
	}
	_ = enc.Encode(batchSummary{
		Summary:   true,
		Items:     items,
		OK:        ok,
		Errors:    errs,
		Truncated: <-truncated,
		Canceled:  ctx.Err() != nil,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// batchRecordFor renders one resolved member as its NDJSON record.
func (s *server) batchRecordFor(job *batchJob, out batchOutcome, configN int) *batchRecord {
	if out.err != nil {
		_, kind := classifyAnalyzeError(out.err)
		return &batchRecord{Index: job.index, Name: job.name, Error: out.err.Error(), Kind: kind}
	}
	s.analyzeByArch.With(out.res.Report.Arch).Inc()
	resp := buildAnalyzeResponse(out.res, configN)
	return &batchRecord{Index: job.index, Name: job.name, Result: &resp, StoreKey: out.res.StoreKey}
}

// batchIterator returns a pull function over the uploaded archive's
// members — (name, data, nil) per member, io.EOF at a clean end, any
// other error on framing damage — plus a drain that consumes the body
// remainder. The format is chosen by Content-Type: multipart/form-data
// streams its file parts, anything else is read as a tar stream. The
// whole upload is capped at maxBatchBytes.
func (s *server) batchIterator(w http.ResponseWriter, r *http.Request) (func() (string, []byte, error), func(), error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBatchBytes)
	drain := func() { _, _ = io.Copy(io.Discard, body) }
	mediaType, params, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == "multipart/form-data" {
		boundary := params["boundary"]
		if boundary == "" {
			return nil, nil, errors.New("multipart request without a boundary")
		}
		mr := multipart.NewReader(body, boundary)
		return func() (string, []byte, error) {
			for {
				part, err := mr.NextPart()
				if err != nil {
					if err == io.EOF {
						return "", nil, io.EOF
					}
					return "", nil, err
				}
				if part.FileName() == "" && part.FormName() != "binary" {
					continue // non-file fields (options, junk) are skipped
				}
				name := part.FileName()
				if name == "" {
					name = part.FormName()
				}
				data, err := io.ReadAll(part)
				if err != nil {
					return "", nil, err
				}
				return name, data, nil
			}
		}, drain, nil
	}
	// Tar: regular files only; directories and special members skipped.
	tr := tar.NewReader(body)
	return func() (string, []byte, error) {
		for {
			hdr, err := tr.Next()
			if err != nil {
				if err == io.EOF {
					return "", nil, io.EOF
				}
				return "", nil, err
			}
			if hdr.Typeflag != tar.TypeReg {
				continue
			}
			data, err := io.ReadAll(tr)
			if err != nil {
				return "", nil, err
			}
			return hdr.Name, data, nil
		}
	}, drain, nil
}

// buildAnalyzeResponse renders one engine result as the wire shape
// shared by /v1/analyze and /v1/batch records.
func buildAnalyzeResponse(res *engine.Result, configN int) analyzeResponse {
	var cached any = false
	if res.Cached {
		cached = res.CacheSource
	}
	rep := res.Report
	return analyzeResponse{
		SHA256:                 res.SHA256,
		Arch:                   rep.Arch,
		Config:                 configN,
		Cached:                 cached,
		ElapsedMS:              float64(res.Elapsed) / float64(time.Millisecond),
		Entries:                rep.Entries,
		Endbrs:                 len(rep.Endbrs),
		CallTargets:            len(rep.CallTargets),
		JumpTargets:            len(rep.JumpTargets),
		TailCallTargets:        len(rep.TailCallTargets),
		FilteredIndirectReturn: rep.FilteredIndirectReturn,
		FilteredLandingPads:    rep.FilteredLandingPads,
		FusedFDEEntries:        rep.FusedFDEEntries,
		Warnings:               rep.Warnings,
	}
}
