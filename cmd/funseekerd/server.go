package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"strconv"
	"time"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/obs"
)

// serverConfig carries the per-request limits of one funseekerd
// instance.
type serverConfig struct {
	// maxBodyBytes caps the request body (the uploaded ELF image), and
	// the per-member size inside a batch archive.
	maxBodyBytes int64
	// maxBatchBytes caps a whole /v1/batch upload; zero selects
	// 16×maxBodyBytes.
	maxBatchBytes int64
	// reqTimeout bounds one analyze request end to end; zero disables.
	reqTimeout time.Duration
	// slowThreshold promotes requests slower than this to a WARN-level
	// "slow request" log line; zero disables.
	slowThreshold time.Duration
	// logger receives structured access logs; nil discards them.
	logger *slog.Logger
	// registry receives the server's HTTP metrics and backs GET
	// /metrics. Nil selects a private registry (useful in tests that
	// don't scrape). Share it with the engine's Config.Registry so one
	// scrape covers both layers.
	registry *obs.Registry
}

// server is the HTTP surface over one shared analysis engine.
type server struct {
	eng   *engine.Engine
	cfg   serverConfig
	start time.Time

	// reqsByKind counts finished requests by outcome kind (the error
	// taxonomy kind, or "ok"); reqSeconds is the edge-to-edge request
	// latency including body read and JSON encode.
	reqsByKind *obs.CounterVec
	reqSeconds *obs.Histogram
	// analyzeByArch counts successful analyses by the architecture the
	// dispatched backend reported, so a mixed-ISA corpus shows its split
	// at the scrape endpoint.
	analyzeByArch *obs.CounterVec
	// batchItems counts /v1/batch member records by outcome ("ok" or
	// "error"); shedTotal counts requests refused by the load shedder.
	batchItems *obs.CounterVec
	shedTotal  *obs.Counter
	// shed is the admission controller behind 429 + Retry-After.
	shed *shedder
}

// newServer builds the funseekerd HTTP layer over eng. Call handler()
// for the public routes and debugHandler() for the opt-in debug
// listener.
func newServer(eng *engine.Engine, cfg serverConfig) *server {
	if cfg.registry == nil {
		cfg.registry = obs.NewRegistry()
	}
	s := &server{eng: eng, cfg: cfg, start: time.Now()}
	s.reqsByKind = cfg.registry.NewCounterVec("funseekerd_http_requests_total",
		"Finished HTTP requests by outcome kind.", "kind")
	s.reqSeconds = cfg.registry.NewHistogram("funseekerd_http_request_seconds",
		"Edge-to-edge HTTP request latency.", nil)
	s.analyzeByArch = cfg.registry.NewCounterVec("funseekerd_analyze_arch_total",
		"Successful analyses by binary architecture.", "arch")
	s.batchItems = cfg.registry.NewCounterVec("funseekerd_batch_items_total",
		"Batch archive members processed, by outcome.", "outcome")
	s.shedTotal = cfg.registry.NewCounter("funseekerd_shed_total",
		"Requests refused with 429 by the queue-wait load shedder.")
	if s.cfg.maxBatchBytes <= 0 {
		s.cfg.maxBatchBytes = 16 * s.cfg.maxBodyBytes
	}
	// The shed knobs live in engine.Config (normalized with everything
	// else); the admission check stays here at the edge.
	bound, window := eng.ShedConfig()
	s.shed = newShedder(eng, bound, window)
	return s
}

// handler wires the public funseekerd routes:
//
//	POST /v1/analyze  — analyze an ELF image (raw body or multipart
//	                    field "binary"); x86-64 and aarch64 images are
//	                    dispatched to their backends by the ELF header.
//	                    ?config=1..5 selects the algorithm
//	                    configuration, ?superset=1 adds the byte-level
//	                    landmark scan, ?require_cet=1 rejects
//	                    landmark-free binaries, ?arch=x86-64|aarch64
//	                    pins a backend instead of trusting the header
//	POST /v1/batch    — analyze a whole archive (tar stream or
//	                    multipart form) of ELF images; per-member
//	                    results stream back as NDJSON in archive order,
//	                    with per-member error isolation and a final
//	                    summary line. Same query options as
//	                    /v1/analyze, applied to every member.
//	GET  /v1/healthz  — liveness
//	GET  /v1/stats    — versioned stats document ("v": 2) with
//	                    engine/cache/store/shed/server blocks; ?v=1
//	                    serves the deprecated flat shape for one more
//	                    release
//	GET  /v1/result   — raw stored-result value by hex store key
//	PUT  /v1/result   — install a stored result computed on another
//	                    replica (validated against the key's hash)
//	GET  /v1/keys     — every persisted result key, for replica diffs
//	POST /v1/admin/compact — run one store compaction now
//	GET  /metrics     — Prometheus text-format exposition (engine +
//	                    HTTP series)
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/result", s.handleGetResult)
	mux.HandleFunc("PUT /v1/result", s.handlePutResult)
	mux.HandleFunc("GET /v1/keys", s.handleKeys)
	mux.HandleFunc("POST /v1/admin/compact", s.handleCompact)
	mux.Handle("GET /metrics", s.cfg.registry.Handler())
	return s.middleware(mux)
}

// debugHandler wires the opt-in debug listener: pprof, expvar, and a
// second /metrics mount, all behind the same tracing middleware so even
// profile fetches carry request IDs in the access log. The pprof
// streaming endpoints are why statusWriter implements http.Flusher.
func (s *server) debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", s.cfg.registry.Handler())
	return s.middleware(mux)
}

// analyzeResponse is the JSON shape of one successful analysis: the
// Report plus service metadata.
type analyzeResponse struct {
	SHA256 string `json:"sha256"`
	// Arch is the backend that analyzed the image ("x86-64",
	// "aarch64", ...), detected from the ELF header unless ?arch=
	// pinned it.
	Arch   string `json:"arch"`
	Config int    `json:"config"`
	// Cached is false for a fresh analysis, or the string "lru" /
	// "store" / "coalesced" naming the fast path that served the
	// result.
	Cached    any     `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`

	Entries         []uint64 `json:"entries"`
	Endbrs          int      `json:"endbrs"`
	CallTargets     int      `json:"call_targets"`
	JumpTargets     int      `json:"jump_targets"`
	TailCallTargets int      `json:"tail_call_targets"`

	FilteredIndirectReturn int `json:"filtered_indirect_return"`
	FilteredLandingPads    int `json:"filtered_landing_pads"`
	// FusedFDEEntries counts the entries configuration ⑤ added from
	// .eh_frame FDE starts; always 0 for configs 1-4.
	FusedFDEEntries int      `json:"fused_fde_entries,omitempty"`
	Warnings        []string `json:"warnings,omitempty"`
}

// errorResponse is the JSON error envelope; kind is the stable sentinel
// name clients branch on, request_id the trace ID to quote when
// reporting the failure.
type errorResponse struct {
	Error     string `json:"error"`
	Kind      string `json:"kind,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if retry, shed := s.shed.overloaded(); shed {
		s.shedTotal.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
		writeErrorKind(w, r, http.StatusTooManyRequests,
			errors.New("queue-wait p99 over the shed bound; retry later"), "overloaded")
		return
	}
	ctx := r.Context()
	if s.cfg.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.reqTimeout)
		defer cancel()
	}

	opts, configN, err := parseAnalyzeOptions(r.URL.Query())
	if err != nil {
		writeErrorKind(w, r, http.StatusBadRequest, err, "bad_request")
		return
	}

	raw, err := s.readBinary(w, r)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, err)
		return
	}

	res, err := s.eng.Analyze(ctx, raw, opts)
	if err != nil {
		status, kind := classifyAnalyzeError(err)
		writeErrorKind(w, r, status, err, kind)
		return
	}

	s.analyzeByArch.With(res.Report.Arch).Inc()
	// The store key identifies this result across replicas; the router's
	// replication path copies it to the ring successor by this handle.
	w.Header().Set(storeKeyHeader, res.StoreKey)
	writeJSON(w, http.StatusOK, buildAnalyzeResponse(res, configN))
}

// storeKeyHeader carries the hex persistent-store key of an analyze
// result, so a proxy can address the stored result without recomputing
// the content hash + option bits itself.
const storeKeyHeader = "X-Funseeker-Store-Key"

// analyzeQueryKeys is the complete query surface of /v1/analyze and
// /v1/batch. Anything else is a structured 400 — a typo like
// ?supserset=1 must fail loudly, not silently analyze with different
// options than the client believes.
var analyzeQueryKeys = map[string]bool{
	"config":      true,
	"superset":    true,
	"require_cet": true,
	"arch":        true,
}

// parseAnalyzeOptions maps the analyze query surface (?config=1..5,
// ?superset, ?require_cet, ?arch=) to engine options. One parser for
// both /v1/analyze and /v1/batch, so the two endpoints can never
// drift; unknown keys and malformed values are errors the handlers
// turn into 400 kind "bad_request".
func parseAnalyzeOptions(q url.Values) (core.Options, int, error) {
	for key := range q {
		if !analyzeQueryKeys[key] {
			return core.Options{}, 0, fmt.Errorf("unknown query parameter %q (want config, superset, require_cet, arch)", key)
		}
	}
	configN := 4
	if v := q.Get("config"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 5 {
			return core.Options{}, 0, fmt.Errorf("config must be 1-5, got %q", v)
		}
		configN = n
	}
	var opts core.Options
	switch configN {
	case 1:
		opts = core.Config1
	case 2:
		opts = core.Config2
	case 3:
		opts = core.Config3
	case 4:
		opts = core.Config4
	case 5:
		opts = core.Config5
	}
	superset, err := parseQueryBool(q, "superset")
	if err != nil {
		return core.Options{}, 0, err
	}
	opts.SupersetEndbrScan = opts.SupersetEndbrScan || superset
	requireCET, err := parseQueryBool(q, "require_cet")
	if err != nil {
		return core.Options{}, 0, err
	}
	opts.RequireCET = opts.RequireCET || requireCET
	if v := q.Get("arch"); v != "" {
		arch, ok := elfx.ParseArch(v)
		if !ok {
			return core.Options{}, 0, fmt.Errorf("unknown arch %q (want x86, x86-64, or aarch64)", v)
		}
		opts.Arch = arch
	}
	return opts, configN, nil
}

// parseQueryBool reads an optional boolean query flag strictly: the
// usual spellings of true and false are accepted, anything else is an
// error rather than a silent false.
func parseQueryBool(q url.Values, key string) (bool, error) {
	switch v := q.Get(key); v {
	case "", "0", "false", "no":
		return false, nil
	case "1", "true", "yes":
		return true, nil
	default:
		return false, fmt.Errorf("%s must be a boolean (1/true/yes or 0/false/no), got %q", key, v)
	}
}

// readBinary extracts the ELF image from the request: the "binary" file
// field of a multipart form, or the raw body otherwise. The configured
// body limit applies to either path via MaxBytesReader, and an empty
// image is rejected on either path — better a clear 400 here than a
// baffling 422 not_elf from the engine.
func (s *server) readBinary(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	mediaType, params, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == "multipart/form-data" {
		boundary := params["boundary"]
		if boundary == "" {
			return nil, errors.New("multipart request without a boundary")
		}
		mr := multipart.NewReader(body, boundary)
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				return nil, errors.New(`multipart request without a "binary" part`)
			}
			if err != nil {
				return nil, err
			}
			if part.FormName() == "binary" {
				raw, err := io.ReadAll(part)
				if err != nil {
					return nil, err
				}
				if len(raw) == 0 {
					return nil, errors.New(`multipart "binary" part is empty`)
				}
				return raw, nil
			}
		}
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, errors.New("empty request body")
	}
	return raw, nil
}

// classifyAnalyzeError maps the package error taxonomy onto HTTP status
// codes: malformed inputs are the client's fault (422), cancellations
// and timeouts are reported as such, anything else is a 500.
func classifyAnalyzeError(err error) (status int, kind string) {
	switch {
	case errors.Is(err, elfx.ErrNotELF):
		return http.StatusUnprocessableEntity, "not_elf"
	case errors.Is(err, elfx.ErrNoText):
		return http.StatusUnprocessableEntity, "no_text"
	case errors.Is(err, core.ErrNotCET):
		return http.StatusUnprocessableEntity, "not_cet"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"
	default:
		return http.StatusInternalServerError, ""
	}
}

// statusKind maps a finished response's status code to the label value
// of the request counter. Analyze failures keep their taxonomy kind via
// classifyAnalyzeError's status mapping.
func statusKind(status int) string {
	switch {
	case status < 300:
		return "ok"
	case status == http.StatusBadRequest:
		return "bad_request"
	case status == http.StatusNotFound:
		return "not_found"
	case status == http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case status == http.StatusRequestEntityTooLarge:
		return "too_large"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusUnprocessableEntity:
		return "unprocessable"
	case status == http.StatusServiceUnavailable:
		return "canceled"
	case status == http.StatusGatewayTimeout:
		return "deadline"
	case status >= 500:
		return "internal"
	default:
		return "other"
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsResponse is the legacy (v1) flat /v1/stats shape, kept behind
// ?v=1 for one release; see docs/API.md for the deprecation note.
type statsResponse struct {
	engine.Stats
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
}

// statsSnapshot builds the legacy flat payload; the expvar publication
// in main reuses it so ?v=1 and /debug/vars never disagree.
func (s *server) statsSnapshot() statsResponse {
	return statsResponse{
		Stats:         s.eng.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
	}
}

// statsDoc builds the versioned v2 stats document: the engine's
// engine/cache/store blocks plus the server-owned shed and process
// blocks. funseeker-lb relays this same document per node.
func (s *server) statsDoc() engine.StatsDoc {
	doc := s.eng.StatsDoc()
	bound, window := s.eng.ShedConfig()
	doc.Shed = &engine.ShedStatsBlock{
		Enabled:    bound > 0,
		BoundMS:    float64(bound) / float64(time.Millisecond),
		WindowMS:   float64(window) / float64(time.Millisecond),
		QueueP99MS: s.shed.currentP99() * 1000,
		ShedTotal:  s.shedTotal.Value(),
	}
	doc.Server = &engine.ServerStatsBlock{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
	}
	return doc
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	switch v := r.URL.Query().Get("v"); v {
	case "", "2":
		writeJSON(w, http.StatusOK, s.statsDoc())
	case "1":
		// Deprecated compatibility shim, scheduled for removal one
		// release after the v2 envelope shipped.
		writeJSON(w, http.StatusOK, s.statsSnapshot())
	default:
		writeErrorKind(w, r, http.StatusBadRequest,
			fmt.Errorf("unsupported stats version %q (want 1 or 2)", v), "bad_request")
	}
}

// handleGetResult serves the raw stored-result value under a hex store
// key — the replica-transfer read side. 404 not_found when the key is
// absent (or no store is configured: a storeless replica has nothing
// to offer and the router treats both the same).
func (s *server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErrorKind(w, r, http.StatusBadRequest, errors.New("missing key parameter"), "bad_request")
		return
	}
	val, ok, err := s.eng.StoredValue(key)
	if errors.Is(err, engine.ErrNoStore) {
		writeErrorKind(w, r, http.StatusNotFound, err, "no_store")
		return
	}
	if err != nil {
		writeErrorKind(w, r, http.StatusBadRequest, err, "bad_request")
		return
	}
	if !ok {
		writeErrorKind(w, r, http.StatusNotFound, errors.New("no stored result under that key"), "not_found")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(val)
}

// handlePutResult installs a stored result computed on another replica
// — the replica-transfer write side. The engine validates the codec
// and that the value's content hash matches the key before anything is
// persisted or cached.
func (s *server) handlePutResult(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErrorKind(w, r, http.StatusBadRequest, errors.New("missing key parameter"), "bad_request")
		return
	}
	val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeErrorKind(w, r, http.StatusBadRequest, err, "bad_request")
		return
	}
	if err := s.eng.InjectResult(key, val); err != nil {
		if errors.Is(err, engine.ErrNoStore) {
			writeErrorKind(w, r, http.StatusNotFound, err, "no_store")
			return
		}
		writeErrorKind(w, r, http.StatusBadRequest, err, "bad_request")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

// keysResponse is GET /v1/keys: every persisted result key, the
// inventory the router's re-replication diff walks.
type keysResponse struct {
	Count int      `json:"count"`
	Keys  []string `json:"keys"`
}

func (s *server) handleKeys(w http.ResponseWriter, r *http.Request) {
	keys, err := s.eng.StoreKeys()
	if errors.Is(err, engine.ErrNoStore) {
		writeErrorKind(w, r, http.StatusNotFound, err, "no_store")
		return
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, keysResponse{Count: len(keys), Keys: keys})
}

// handleCompact runs one explicit store compaction and reports what it
// reclaimed. Admin surface: the background compactor does the same on
// its own schedule; this exists for tests, runbooks, and the CI smoke.
func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	res, err := s.eng.CompactStore()
	if errors.Is(err, engine.ErrNoStore) {
		writeErrorKind(w, r, http.StatusNotFound, err, "no_store")
		return
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// middleware is the observability edge shared by every route: it mints
// (or adopts) the per-request trace ID, returns it in the
// X-Funseeker-Request-Id header, threads it through the request context
// so every slog line below carries it, captures status/bytes for the
// access log, feeds the HTTP metrics, and promotes requests slower than
// the configured threshold to a WARN line.
func (s *server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.RequestIDHeader)
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		r = r.WithContext(ctx)
		w.Header().Set(obs.RequestIDHeader, id)

		rw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rw, r)
		elapsed := time.Since(start)

		s.reqsByKind.With(statusKind(rw.status)).Inc()
		s.reqSeconds.ObserveDuration(elapsed)

		if s.cfg.logger == nil {
			return
		}
		attrs := []any{
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", rw.status,
			"bytes_out", rw.bytes,
			"duration_ms", float64(elapsed) / float64(time.Millisecond),
			"remote", r.RemoteAddr,
		}
		// Context-free on purpose: these lines carry request_id as an
		// explicit attr, so the context decorator must not stamp a second
		// copy. Handler-level logging below the middleware uses the
		// ...Context forms and gets the ID from the decorator instead.
		s.cfg.logger.Info("request", attrs...)
		if s.cfg.slowThreshold > 0 && elapsed > s.cfg.slowThreshold {
			s.cfg.logger.Warn("slow request",
				append(attrs, "threshold_ms", float64(s.cfg.slowThreshold)/float64(time.Millisecond))...)
		}
	})
}

// statusWriter captures the status code and byte count for the access
// log while passing the optional http.ResponseWriter extensions through:
// Flush for streaming handlers (pprof's profile/trace endpoints write
// incrementally) and Unwrap for http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer's Flusher, if any — without
// this the wrapper would silently hide streaming support from handlers
// that probe for http.Flusher.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeErrorKind(w, r, status, err, "")
}

func writeErrorKind(w http.ResponseWriter, r *http.Request, status int, err error, kind string) {
	writeJSON(w, status, errorResponse{
		Error:     err.Error(),
		Kind:      kind,
		RequestID: obs.RequestID(r.Context()),
	})
}
