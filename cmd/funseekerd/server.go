package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"mime/multipart"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
	"github.com/funseeker/funseeker/internal/engine"
)

// serverConfig carries the per-request limits of one funseekerd
// instance.
type serverConfig struct {
	// maxBodyBytes caps the request body (the uploaded ELF image).
	maxBodyBytes int64
	// reqTimeout bounds one analyze request end to end; zero disables.
	reqTimeout time.Duration
	// logger receives structured access logs; nil discards them.
	logger *slog.Logger
}

// server is the HTTP surface over one shared analysis engine.
type server struct {
	eng   *engine.Engine
	cfg   serverConfig
	start time.Time
}

// newServer wires the funseekerd routes:
//
//	POST /v1/analyze  — analyze an ELF image (raw body or multipart
//	                    field "binary"); ?config=1..4 selects the
//	                    algorithm configuration, ?superset=1 adds the
//	                    byte-level end-branch scan, ?require_cet=1
//	                    rejects endbr-free binaries
//	GET  /v1/healthz  — liveness
//	GET  /v1/stats    — engine counters (cache, in-flight, per-stage
//	                    analysis costs)
func newServer(eng *engine.Engine, cfg serverConfig) http.Handler {
	s := &server{eng: eng, cfg: cfg, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s.accessLog(mux)
}

// analyzeResponse is the JSON shape of one successful analysis: the
// Report plus service metadata.
type analyzeResponse struct {
	SHA256    string  `json:"sha256"`
	Config    int     `json:"config"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`

	Entries         []uint64 `json:"entries"`
	Endbrs          int      `json:"endbrs"`
	CallTargets     int      `json:"call_targets"`
	JumpTargets     int      `json:"jump_targets"`
	TailCallTargets int      `json:"tail_call_targets"`

	FilteredIndirectReturn int      `json:"filtered_indirect_return"`
	FilteredLandingPads    int      `json:"filtered_landing_pads"`
	Warnings               []string `json:"warnings,omitempty"`
}

// errorResponse is the JSON error envelope; kind is the stable sentinel
// name clients branch on.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.cfg.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.reqTimeout)
		defer cancel()
	}

	opts, configN, err := optionsFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	raw, err := s.readBinary(w, r)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}

	res, err := s.eng.Analyze(ctx, raw, opts)
	if err != nil {
		status, kind := classifyAnalyzeError(err)
		writeErrorKind(w, status, err, kind)
		return
	}

	rep := res.Report
	writeJSON(w, http.StatusOK, analyzeResponse{
		SHA256:                 res.SHA256,
		Config:                 configN,
		Cached:                 res.Cached,
		ElapsedMS:              float64(res.Elapsed) / float64(time.Millisecond),
		Entries:                rep.Entries,
		Endbrs:                 len(rep.Endbrs),
		CallTargets:            len(rep.CallTargets),
		JumpTargets:            len(rep.JumpTargets),
		TailCallTargets:        len(rep.TailCallTargets),
		FilteredIndirectReturn: rep.FilteredIndirectReturn,
		FilteredLandingPads:    rep.FilteredLandingPads,
		Warnings:               rep.Warnings,
	})
}

// optionsFromQuery maps ?config / ?superset / ?require_cet to Options.
func optionsFromQuery(r *http.Request) (core.Options, int, error) {
	q := r.URL.Query()
	configN := 4
	if v := q.Get("config"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 4 {
			return core.Options{}, 0, fmt.Errorf("config must be 1-4, got %q", v)
		}
		configN = n
	}
	var opts core.Options
	switch configN {
	case 1:
		opts = core.Config1
	case 2:
		opts = core.Config2
	case 3:
		opts = core.Config3
	case 4:
		opts = core.Config4
	}
	if isQueryTrue(q.Get("superset")) {
		opts.SupersetEndbrScan = true
	}
	if isQueryTrue(q.Get("require_cet")) {
		opts.RequireCET = true
	}
	return opts, configN, nil
}

func isQueryTrue(v string) bool {
	return v == "1" || v == "true" || v == "yes"
}

// readBinary extracts the ELF image from the request: the "binary" file
// field of a multipart form, or the raw body otherwise. The configured
// body limit applies to either path via MaxBytesReader.
func (s *server) readBinary(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes)
	mediaType, params, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == "multipart/form-data" {
		boundary := params["boundary"]
		if boundary == "" {
			return nil, errors.New("multipart request without a boundary")
		}
		mr := multipart.NewReader(body, boundary)
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				return nil, errors.New(`multipart request without a "binary" part`)
			}
			if err != nil {
				return nil, err
			}
			if part.FormName() == "binary" {
				return io.ReadAll(part)
			}
		}
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, errors.New("empty request body")
	}
	return raw, nil
}

// classifyAnalyzeError maps the package error taxonomy onto HTTP status
// codes: malformed inputs are the client's fault (422), cancellations
// and timeouts are reported as such, anything else is a 500.
func classifyAnalyzeError(err error) (status int, kind string) {
	switch {
	case errors.Is(err, elfx.ErrNotELF):
		return http.StatusUnprocessableEntity, "not_elf"
	case errors.Is(err, elfx.ErrNoText):
		return http.StatusUnprocessableEntity, "no_text"
	case errors.Is(err, core.ErrNotCET):
		return http.StatusUnprocessableEntity, "not_cet"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"
	default:
		return http.StatusInternalServerError, ""
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsResponse is /v1/stats: the engine snapshot plus process-level
// context.
type statsResponse struct {
	engine.Stats
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
}

// statsSnapshot builds the full stats payload; the expvar publication in
// main reuses it so /v1/stats and /debug/vars never disagree.
func (s *server) statsSnapshot() statsResponse {
	return statsResponse{
		Stats:         s.eng.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// accessLog wraps next with structured request logging.
func (s *server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		rw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rw, r)
		s.cfg.logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", rw.status,
			"bytes_out", rw.bytes,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
			"remote", r.RemoteAddr,
		)
	})
}

// statusWriter captures the status code and byte count for the access
// log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorKind(w, status, err, "")
}

func writeErrorKind(w http.ResponseWriter, status int, err error, kind string) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}
