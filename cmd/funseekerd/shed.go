package main

import (
	"sync"
	"time"

	"github.com/funseeker/funseeker/internal/engine"
	"github.com/funseeker/funseeker/internal/obs"
)

// shedder is funseekerd's admission controller: it watches the
// engine's queue-wait histogram (the first place worker-pool
// saturation shows up) and starts refusing new analysis work with
// 429 + Retry-After once the p99 wait crosses a configured bound.
//
// Refusing early is the whole point: a request the pool cannot start
// promptly would only sit in the queue holding its body in memory and
// eventually time out anyway; a 429 with Retry-After lets a
// well-behaved client (or the funseeker-lb router) back off or try a
// less-loaded replica instead.
//
// The signal is a *windowed* p99: every window the shedder snapshots
// the cumulative histogram and diffs it against the previous snapshot,
// so the decision tracks the last window's traffic rather than the
// whole process lifetime (a busy hour at startup must not shed forever
// after the load has passed). A non-positive window falls back to the
// cumulative distribution, which tests use for determinism.
type shedder struct {
	eng    *engine.Engine
	bound  time.Duration // shed when windowed queue-wait p99 exceeds this; 0 disables
	window time.Duration // refresh cadence of the windowed p99; <=0 reads cumulative

	mu     sync.Mutex
	prev   obs.HistSnapshot // cumulative snapshot at the last window edge
	prevAt time.Time
	p99    float64 // seconds, from the last completed window
}

func newShedder(eng *engine.Engine, bound, window time.Duration) *shedder {
	return &shedder{eng: eng, bound: bound, window: window}
}

// overloaded reports whether new analysis work should be refused right
// now, and if so for how long the client should back off. Cheap enough
// to call per request: a bounded atomic scan, and the windowed path
// only re-diffs once per window.
func (sh *shedder) overloaded() (retryAfter time.Duration, shed bool) {
	if sh == nil || sh.bound <= 0 {
		return 0, false
	}
	var p99 float64
	if sh.window <= 0 {
		p99 = sh.eng.QueueWaitSnapshot().Quantile(0.99)
	} else {
		p99 = sh.windowedP99()
	}
	if p99 <= sh.bound.Seconds() {
		return 0, false
	}
	retry := sh.window
	if retry < time.Second {
		retry = time.Second
	}
	return retry, true
}

// currentP99 returns the queue-wait p99 (seconds) the shedder is
// judging admission by right now — the number the stats document
// reports so an operator can see how close the node is to shedding.
func (sh *shedder) currentP99() float64 {
	if sh == nil {
		return 0
	}
	if sh.window <= 0 {
		return sh.eng.QueueWaitSnapshot().Quantile(0.99)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p99
}

// windowedP99 returns the p99 of the most recent completed window,
// advancing the window if it has elapsed.
func (sh *shedder) windowedP99() float64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := time.Now()
	if sh.prevAt.IsZero() {
		// First call: start the window; nothing to diff yet, so admit.
		sh.prev, sh.prevAt = sh.eng.QueueWaitSnapshot(), now
		return 0
	}
	if now.Sub(sh.prevAt) >= sh.window {
		cur := sh.eng.QueueWaitSnapshot()
		sh.p99 = histDelta(cur, sh.prev).Quantile(0.99)
		sh.prev, sh.prevAt = cur, now
	}
	return sh.p99
}

// histDelta subtracts two cumulative snapshots of the same histogram,
// yielding the distribution of only the samples observed between them.
// Counter-monotonicity makes every per-bucket difference non-negative;
// a shape mismatch (can't happen for one histogram, but be safe)
// degrades to the current snapshot.
func histDelta(cur, prev obs.HistSnapshot) obs.HistSnapshot {
	if len(prev.Counts) != len(cur.Counts) {
		return cur
	}
	d := obs.HistSnapshot{
		Bounds: cur.Bounds,
		Counts: make([]uint64, len(cur.Counts)),
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
	}
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i] - prev.Counts[i]
	}
	return d
}
