package funseeker

import (
	"github.com/funseeker/funseeker/internal/cet"
	"github.com/funseeker/funseeker/internal/core"
)

// EndbrDistribution counts end-branch instructions per location class
// (function entry / indirect-return call site / exception landing pad),
// the measurement behind the paper's Table I.
type EndbrDistribution = core.EndbrDistribution

// ClassifyEndbrs classifies every end branch in the binary's .text using
// only the binary's own metadata (PLT names and exception tables).
func ClassifyEndbrs(bin *Binary) (EndbrDistribution, error) {
	return core.ClassifyEndbrs(bin)
}

// ClassifyEndbrsWithContext is ClassifyEndbrs over a shared analysis
// context (the sweep and landing-pad set are reused, not recomputed).
func ClassifyEndbrsWithContext(actx *AnalysisContext) (EndbrDistribution, error) {
	return core.ClassifyEndbrsWithContext(actx)
}

// Function-property bit masks for the Figure 3 style analysis.
const (
	// PropEndbr marks EndBrAtHead: the entry starts with an end branch.
	PropEndbr = core.PropEndbr
	// PropDirCall marks DirCallTarget: a direct call targets the entry.
	PropDirCall = core.PropDirCall
	// PropDirJmp marks DirJmpTarget: a direct unconditional jump targets
	// the entry.
	PropDirJmp = core.PropDirJmp
)

// VennCounts is the 8-region partition of functions by the three
// syntactic properties (the paper's Figure 3).
type VennCounts = core.VennCounts

// AnalyzeProperties computes, for each known function entry, which of the
// three syntactic properties hold.
func AnalyzeProperties(bin *Binary, entries []uint64) VennCounts {
	return core.AnalyzeProperties(bin, entries)
}

// AnalyzePropertiesWithContext is AnalyzeProperties over a shared
// analysis context.
func AnalyzePropertiesWithContext(actx *AnalysisContext, entries []uint64) VennCounts {
	return core.AnalyzePropertiesWithContext(actx, entries)
}

// LandingPads returns the absolute addresses of every C++ exception
// landing pad in the binary, derived from .eh_frame and
// .gcc_except_table.
func LandingPads(bin *Binary) ([]uint64, error) {
	return core.LandingPads(bin)
}

// IndirectReturnFuncs is the predefined GCC list of indirect-return
// functions (setjmp family); compilers put an end branch after every
// call to one of them.
func IndirectReturnFuncs() []string {
	out := make([]string, len(cet.IndirectReturnFuncs))
	copy(out, cet.IndirectReturnFuncs)
	return out
}
