module github.com/funseeker/funseeker

go 1.22
