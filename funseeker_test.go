package funseeker_test

import (
	"bytes"
	"debug/elf"
	"os"
	"path/filepath"
	"testing"

	"github.com/funseeker/funseeker"
)

// buildSample compiles a small feature-rich program via the public API.
func buildSample(t testing.TB, lang funseeker.Lang, cfg funseeker.BuildConfig) *funseeker.BuildResult {
	t.Helper()
	spec := &funseeker.ProgramSpec{
		Name: "sample",
		Lang: lang,
		Seed: 1234,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1, 2}, CallsPLT: []string{"printf"}, HasSwitch: true, SwitchCases: 4},
			{Name: "alpha", Calls: []int{3}},
			{Name: "beta", IndirectReturnCall: "vfork"},
			{Name: "gamma", Static: true},
			{Name: "delta", AddressTakenData: true},
			{Name: "tail_a", TailCalls: []int{6}},
			{Name: "shared_impl", Static: true},
			{Name: "tail_b", TailCalls: []int{6}},
		},
	}
	if lang == funseeker.LangCPP {
		spec.Funcs = append(spec.Funcs, funseeker.FuncSpec{
			Name: "thrower", HasEH: true, CallsPLT: []string{"__cxa_throw"},
		})
		spec.Funcs[0].Calls = append(spec.Funcs[0].Calls, len(spec.Funcs)-1)
	}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return res
}

func defaultBuild() funseeker.BuildConfig {
	return funseeker.BuildConfig{
		Compiler: funseeker.GCC,
		Mode:     funseeker.ModeX64,
		Opt:      funseeker.O2,
	}
}

func TestPublicIdentifyBytes(t *testing.T) {
	res := buildSample(t, funseeker.LangC, defaultBuild())
	report, err := funseeker.IdentifyBytes(res.Stripped, funseeker.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	m := funseeker.Score(report.Entries, res.GT)
	if m.Recall() < 99.9 {
		t.Errorf("recall = %.2f on a fully live sample", m.Recall())
	}
	if m.Precision() < 99.9 {
		t.Errorf("precision = %.2f (no part blocks expected here, spec has no cold parts)", m.Precision())
	}
}

func TestPublicIdentifyFile(t *testing.T) {
	res := buildSample(t, funseeker.LangCPP, defaultBuild())
	dir := t.TempDir()
	path := filepath.Join(dir, "sample")
	if err := os.WriteFile(path, res.Stripped, 0o755); err != nil {
		t.Fatal(err)
	}
	report, err := funseeker.Identify(path, funseeker.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Entries) == 0 {
		t.Fatal("no entries identified")
	}
	// Ground-truth sidecar round trip.
	gtPath := filepath.Join(dir, "sample.gt.json")
	if err := res.GT.Save(gtPath); err != nil {
		t.Fatal(err)
	}
	gt, err := funseeker.LoadGroundTruth(gtPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt.Funcs) != len(res.GT.Funcs) {
		t.Fatalf("sidecar lost functions: %d != %d", len(gt.Funcs), len(res.GT.Funcs))
	}
	m := funseeker.Score(report.Entries, gt)
	if m.Recall() < 99 {
		t.Errorf("recall = %.2f", m.Recall())
	}
}

func TestPublicIdentifyErrors(t *testing.T) {
	if _, err := funseeker.Identify(filepath.Join(t.TempDir(), "missing"), funseeker.DefaultOptions); err == nil {
		t.Error("want error for missing file")
	}
	if _, err := funseeker.IdentifyBytes([]byte("not an elf"), funseeker.DefaultOptions); err == nil {
		t.Error("want error for junk bytes")
	}
}

func TestPublicStudyAPIs(t *testing.T) {
	res := buildSample(t, funseeker.LangCPP, defaultBuild())
	bin, err := funseeker.Load(res.Stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !bin.CETEnabled {
		t.Error("sample must be CET-enabled")
	}
	dist, err := funseeker.ClassifyEndbrs(bin)
	if err != nil {
		t.Fatal(err)
	}
	if dist.FuncEntry == 0 || dist.IndirectReturn == 0 || dist.Exception == 0 {
		t.Errorf("distribution missing classes: %+v", dist)
	}
	pads, err := funseeker.LandingPads(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) == 0 {
		t.Error("C++ sample must have landing pads")
	}
	venn := funseeker.AnalyzeProperties(bin, res.GT.SortedEntries())
	if venn.Total != len(res.GT.Funcs) {
		t.Errorf("venn total = %d, want %d", venn.Total, len(res.GT.Funcs))
	}
	if got := venn.PctWith(funseeker.PropEndbr); got == 0 {
		t.Error("no functions with end branches?")
	}
	irf := funseeker.IndirectReturnFuncs()
	if len(irf) != 5 {
		t.Errorf("indirect-return list has %d entries, want 5", len(irf))
	}
	irf[0] = "mutated"
	if funseeker.IndirectReturnFuncs()[0] == "mutated" {
		t.Error("IndirectReturnFuncs must return a copy")
	}
}

func TestPublicBaselines(t *testing.T) {
	res := buildSample(t, funseeker.LangC, defaultBuild())
	bin, err := funseeker.Load(res.Stripped)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func(*funseeker.Binary) ([]uint64, error){
		"ida":    funseeker.RunIDA,
		"ghidra": funseeker.RunGhidra,
		"fetch":  funseeker.RunFETCH,
	} {
		entries, err := run(bin)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := funseeker.Score(entries, res.GT)
		if m.TP == 0 {
			t.Errorf("%s found no true entries", name)
		}
	}
}

func TestAllBuildConfigsExposed(t *testing.T) {
	configs := funseeker.AllBuildConfigs()
	if len(configs) != 48 {
		t.Fatalf("AllBuildConfigs = %d, want 48", len(configs))
	}
	seen := map[string]bool{}
	for _, c := range configs {
		if seen[c.String()] {
			t.Errorf("duplicate config %s", c)
		}
		seen[c.String()] = true
	}
}

func TestSuiteGeneration(t *testing.T) {
	for _, suite := range []funseeker.Suite{
		funseeker.SuiteCoreutils, funseeker.SuiteBinutils, funseeker.SuiteSPEC,
	} {
		specs := funseeker.GenerateSuite(suite, funseeker.CorpusOptions{Scale: 0.2, Seed: 5, Programs: 2})
		if len(specs) != 2 {
			t.Fatalf("%v: got %d programs", suite, len(specs))
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				t.Errorf("%v/%s: %v", suite, s.Name, err)
			}
		}
	}
	// SPEC must include C++ programs at paper counts.
	specs := funseeker.GenerateSuite(funseeker.SuiteSPEC, funseeker.CorpusOptions{Scale: 0.2, Seed: 5})
	cpp := 0
	for _, s := range specs {
		if s.Lang == funseeker.LangCPP {
			cpp++
		}
	}
	if cpp == 0 || cpp == len(specs) {
		t.Errorf("SPEC suite should mix C and C++: %d of %d are C++", cpp, len(specs))
	}
}

// TestEndToEndDatasetFlow mimics the synthgen → funseeker CLI pipeline
// through the public API: write binaries + sidecars to disk, identify
// from the file, score.
func TestEndToEndDatasetFlow(t *testing.T) {
	dir := t.TempDir()
	specs := funseeker.GenerateSuite(funseeker.SuiteCoreutils,
		funseeker.CorpusOptions{Scale: 0.3, Seed: 77, Programs: 2})
	cfgs := []funseeker.BuildConfig{
		{Compiler: funseeker.GCC, Mode: funseeker.ModeX64, Opt: funseeker.O2},
		{Compiler: funseeker.Clang, Mode: funseeker.ModeX86, PIE: true, Opt: funseeker.O1},
	}
	var total funseeker.Metrics
	for _, spec := range specs {
		for _, cfg := range cfgs {
			res, err := funseeker.Compile(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base := filepath.Join(dir, spec.Name+"-"+cfg.String())
			if err := os.WriteFile(base, res.Stripped, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := res.GT.Save(base + ".gt.json"); err != nil {
				t.Fatal(err)
			}
			report, err := funseeker.Identify(base, funseeker.DefaultOptions)
			if err != nil {
				t.Fatal(err)
			}
			gt, err := funseeker.LoadGroundTruth(base + ".gt.json")
			if err != nil {
				t.Fatal(err)
			}
			total.Add(funseeker.Score(report.Entries, gt))
		}
	}
	if total.Recall() < 99 {
		t.Errorf("end-to-end recall = %.2f", total.Recall())
	}
	if total.Precision() < 95 {
		t.Errorf("end-to-end precision = %.2f", total.Precision())
	}
}

func TestPublicARMTextIdentify(t *testing.T) {
	res, err := funseeker.CompileBTI(&funseeker.ProgramSpec{
		Name: "textonly", Lang: funseeker.LangC, Seed: 9,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1}},
			{Name: "w", Static: true},
		},
	}, funseeker.BTIBuildConfig{Opt: funseeker.O1})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := funseeker.IdentifyBTI(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	// The raw-text entry point must agree with the ELF path.
	ef, err := elf.NewFile(bytes.NewReader(res.Image))
	if err != nil {
		t.Fatal(err)
	}
	sec := ef.Section(".text")
	text, err := sec.Data()
	if err != nil {
		t.Fatal(err)
	}
	raw := funseeker.IdentifyBTIText(text, sec.Addr)
	if len(raw.Entries) != len(bin.Entries) {
		t.Fatalf("raw text path found %d entries, ELF path %d", len(raw.Entries), len(bin.Entries))
	}
	for i := range raw.Entries {
		if raw.Entries[i] != bin.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestPublicOpenRoundtrip(t *testing.T) {
	res := buildSample(t, funseeker.LangC, defaultBuild())
	path := filepath.Join(t.TempDir(), "bin")
	if err := os.WriteFile(path, res.Stripped, 0o755); err != nil {
		t.Fatal(err)
	}
	bin, err := funseeker.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Path != path || !bin.CETEnabled {
		t.Errorf("Open: path=%q cet=%v", bin.Path, bin.CETEnabled)
	}
}

func TestSupersetOptionExposed(t *testing.T) {
	res := buildSample(t, funseeker.LangC, defaultBuild())
	opts := funseeker.Config4
	opts.SupersetEndbrScan = true
	report, err := funseeker.IdentifyBytes(res.Stripped, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := funseeker.Score(report.Entries, res.GT)
	if m.Recall() < 99.9 {
		t.Errorf("superset option recall %.2f", m.Recall())
	}
}
