// Package funseeker identifies function entry points in CET-enabled
// x86/x86-64 ELF binaries, reproducing the FunSeeker system from
// "How'd Security Benefit Reverse Engineers? The Implication of Intel CET
// on Function Identification" (Kim, Lee, Kim, Jung, Cha — DSN 2022).
//
// The core insight: Intel CET's Indirect Branch Tracking makes compilers
// mark every potential indirect-branch destination with an end-branch
// instruction (ENDBR32/ENDBR64). Those markers sit at almost every
// function entry — but also after calls to indirect-return functions
// (the setjmp family) and at C++ exception landing pads, and some
// functions (static, direct-called-only) carry no marker at all.
// FunSeeker turns this into a fast, linear identification algorithm:
//
//	E, C, J  = DISASSEMBLE(text)   // end branches, call targets, jump targets
//	E'       = FILTERENDBR(E)      // drop non-entry end branches
//	J'       = SELECTTAILCALL(J)   // keep only tail-call jump targets
//	entries  = E' ∪ C ∪ J'
//
// Basic use:
//
//	report, err := funseeker.Identify("/bin/ls-cet", funseeker.DefaultOptions)
//	if err != nil { ... }
//	for _, entry := range report.Entries {
//		fmt.Printf("%#x\n", entry)
//	}
//
// The module also ships everything needed to reproduce the paper's
// evaluation offline: a synthetic CET-aware compiler (Compile, the
// Suite corpus generators), reimplementations of the comparison tools
// (RunIDA, RunGhidra, RunFETCH), and scoring utilities (Score).
package funseeker

import (
	"context"

	"github.com/funseeker/funseeker/internal/analysis"
	"github.com/funseeker/funseeker/internal/core"
	"github.com/funseeker/funseeker/internal/elfx"
)

// The package's error taxonomy. Every failure returned from this
// package's entry points matches exactly one of these sentinels under
// errors.Is, so callers branch on error *kind* rather than on message
// strings:
//
//	ErrNotELF   — the input bytes are not an ELF image
//	ErrNoText   — the ELF has no executable .text section
//	ErrNotCET   — Options.RequireCET was set and no end branch exists
//	ErrCanceled — the context passed to a *Ctx entry point was canceled
//
// A deadline expiry surfaces as context.DeadlineExceeded, unwrapped, by
// the usual context convention.
var (
	// ErrNoText is returned for binaries without an executable .text
	// section.
	ErrNoText = elfx.ErrNoText
	// ErrNotELF is returned when the input does not parse as ELF at all.
	ErrNotELF = elfx.ErrNotELF
	// ErrNotCET is returned when Options.RequireCET is set and the sweep
	// finds no end-branch instruction: the binary was not built for
	// Intel CET / IBT, so the marker-based algorithm cannot apply.
	ErrNotCET = core.ErrNotCET
	// ErrCanceled is the error a canceled *Ctx entry point returns; it
	// is context.Canceled itself, re-exported so callers can write
	// errors.Is(err, funseeker.ErrCanceled) without importing context.
	ErrCanceled = context.Canceled
)

// Options selects which refinement passes run, mirroring the paper's four
// evaluation configurations (Table II).
type Options = core.Options

// Configuration presets from the paper's Table II. DefaultOptions is the
// full algorithm (configuration ④).
var (
	// Config1 is E ∪ C: raw end branches plus direct call targets.
	Config1 = core.Config1
	// Config2 adds FILTERENDBR (E′ ∪ C).
	Config2 = core.Config2
	// Config3 additionally includes every direct jump target (E′ ∪ C ∪ J).
	Config3 = core.Config3
	// Config4 is the full algorithm (E′ ∪ C ∪ J′).
	Config4 = core.Config4
	// Config5 fuses .eh_frame evidence into the full algorithm
	// (E′ ∪ C ∪ J′ ∪ F); it keeps working on binaries without CET markers.
	Config5 = core.Config5
	// DefaultOptions is Config4.
	DefaultOptions = core.DefaultOptions
)

// Report is the result of one identification run: the identified entries
// plus the intermediate sets (E, C, J, J′) and filter statistics.
type Report = core.Report

// Binary is a loaded ELF executable ready for analysis.
type Binary = elfx.Binary

// Arch names an analysis backend. The zero value (ArchAuto) means
// "dispatch on the ELF header", which is right for every normal caller.
type Arch = elfx.Arch

// Architecture constants, re-exported from the loader.
const (
	// ArchAuto dispatches on the binary's ELF header.
	ArchAuto = elfx.ArchAuto
	// ArchX86 is 32-bit x86 (CET/ENDBR32).
	ArchX86 = elfx.ArchX86
	// ArchX86_64 is x86-64 (CET/ENDBR64).
	ArchX86_64 = elfx.ArchX86_64
	// ArchAArch64 is 64-bit ARM (BTI/PACIASP).
	ArchAArch64 = elfx.ArchAArch64
	// ArchUnknown marks an ELF machine no backend handles.
	ArchUnknown = elfx.ArchUnknown
)

// DetectArch peeks at an ELF header and reports the architecture Load
// would assign, without parsing the image. Non-ELF input yields
// ArchUnknown.
func DetectArch(raw []byte) Arch {
	return elfx.DetectArch(raw)
}

// ParseArch maps a human-facing architecture name ("x86-64", "amd64",
// "aarch64", "arm64", "auto", ...) to its Arch value.
func ParseArch(s string) (Arch, bool) {
	return elfx.ParseArch(s)
}

// AnalysisContext is the shared per-binary analysis state: the linear
// sweep, reference sets, .eh_frame parse, and landing-pad set are each
// computed once per binary, on first demand, and shared by every analyzer
// consuming the context — including analyzers on other goroutines. Build
// one with NewContext when running several tools or configurations over
// the same binary.
//
// Naming convention: an *AnalysisContext parameter is always called
// actx, a context.Context always ctx. The two compose: the *Ctx entry
// points take both ("run this analysis over the shared artifacts in
// actx, abandoning it if ctx is canceled").
type AnalysisContext = analysis.Context

// AnalysisStats is a snapshot of per-stage costs and memoization hit/miss
// counts for one context (or, via Add, an aggregate over many).
type AnalysisStats = analysis.Stats

// NewContext wraps a loaded binary in a fresh analysis context.
func NewContext(bin *Binary) *AnalysisContext {
	return analysis.NewContext(bin)
}

// Identify runs FunSeeker on the ELF binary at path.
func Identify(path string, opts Options) (*Report, error) {
	return core.IdentifyFile(path, opts)
}

// IdentifyCtx runs FunSeeker on the ELF binary at path under ctx.
// Cancellation is cooperative and cheap: the linear sweep — the dominant
// cost — checks ctx at parallel-shard and stride boundaries, so a
// canceled or timed-out request stops burning CPU within tens of
// microseconds and returns ErrCanceled (or context.DeadlineExceeded).
func IdentifyCtx(ctx context.Context, path string, opts Options) (*Report, error) {
	return core.IdentifyFileCtx(ctx, path, opts)
}

// IdentifyWithContext runs FunSeeker using the shared per-binary analysis
// artifacts memoized in actx. Use this (rather than IdentifyBinary) when
// the same binary is analyzed more than once — e.g. all four
// configurations, or FunSeeker alongside the baseline tools — so the
// sweep and exception-metadata parse are not repeated.
func IdentifyWithContext(actx *AnalysisContext, opts Options) (*Report, error) {
	return core.IdentifyWithContext(actx, opts)
}

// IdentifyWithContextCtx is IdentifyWithContext under a cancelable ctx
// (see IdentifyCtx for the cancellation semantics). A canceled first
// sweep is not memoized into actx; a later call recomputes it.
func IdentifyWithContextCtx(ctx context.Context, actx *AnalysisContext, opts Options) (*Report, error) {
	return core.IdentifyCtx(ctx, actx, opts)
}

// IdentifyBytes runs FunSeeker on an in-memory ELF image.
func IdentifyBytes(raw []byte, opts Options) (*Report, error) {
	return IdentifyBytesCtx(context.Background(), raw, opts)
}

// IdentifyBytesCtx runs FunSeeker on an in-memory ELF image under ctx
// (see IdentifyCtx for the cancellation semantics).
func IdentifyBytesCtx(ctx context.Context, raw []byte, opts Options) (*Report, error) {
	bin, err := elfx.Load(raw)
	if err != nil {
		return nil, err
	}
	return core.IdentifyCtx(ctx, analysis.NewContext(bin), opts)
}

// IdentifyBinary runs FunSeeker on an already-loaded binary.
func IdentifyBinary(bin *Binary, opts Options) (*Report, error) {
	return core.Identify(bin, opts)
}

// IdentifyBinaryCtx runs FunSeeker on an already-loaded binary under ctx
// (see IdentifyCtx for the cancellation semantics).
func IdentifyBinaryCtx(ctx context.Context, bin *Binary, opts Options) (*Report, error) {
	return core.IdentifyCtx(ctx, analysis.NewContext(bin), opts)
}

// Open loads the ELF binary at path for analysis.
func Open(path string) (*Binary, error) {
	return elfx.Open(path)
}

// Load parses an in-memory ELF image for analysis.
func Load(raw []byte) (*Binary, error) {
	return elfx.Load(raw)
}
