package funseeker_test

// The benchmark harness regenerates, in testing.B form, the measurement
// behind every table and figure of the paper's evaluation:
//
//	BenchmarkTableI            — end-branch location classification
//	BenchmarkFigure3           — function-property Venn analysis
//	BenchmarkTableII_Config1-4 — the FunSeeker ablation configurations
//	BenchmarkTableIII_*        — the four tools of the comparison table
//	                             (the per-op times reproduce the paper's
//	                             Table III "Time" columns; FETCH is the
//	                             slow one)
//	BenchmarkAblation*         — design-choice ablations from DESIGN.md §4
//	BenchmarkCompile/Load      — synthetic-toolchain throughput
//
// Benchmarks run over a fixed mixed-configuration corpus built once per
// process. `go test -bench=. -benchmem` prints the series; quality
// numbers (precision/recall) for the same experiments come from
// cmd/evaltables.

import (
	"sync"
	"testing"

	"github.com/funseeker/funseeker"
)

// benchCase is one prebuilt binary.
type benchCase struct {
	bin *funseeker.Binary
	gt  *funseeker.GroundTruth
}

var (
	benchOnce  sync.Once
	benchSet   []benchCase
	benchBytes int
)

// benchCorpus builds a mixed corpus: a few programs from each suite in
// four representative configurations.
func benchCorpus(tb testing.TB) []benchCase {
	benchOnce.Do(func() {
		opts := funseeker.CorpusOptions{Scale: 0.5, Seed: 424242, Programs: 3}
		configs := []funseeker.BuildConfig{
			{Compiler: funseeker.GCC, Mode: funseeker.ModeX64, Opt: funseeker.O2},
			{Compiler: funseeker.GCC, Mode: funseeker.ModeX86, Opt: funseeker.O0},
			{Compiler: funseeker.Clang, Mode: funseeker.ModeX64, PIE: true, Opt: funseeker.O3},
			{Compiler: funseeker.Clang, Mode: funseeker.ModeX86, Opt: funseeker.Os},
		}
		for _, suite := range []funseeker.Suite{
			funseeker.SuiteCoreutils, funseeker.SuiteBinutils, funseeker.SuiteSPEC,
		} {
			for _, spec := range funseeker.GenerateSuite(suite, opts) {
				for _, cfg := range configs {
					res, err := funseeker.Compile(spec, cfg)
					if err != nil {
						tb.Fatalf("bench corpus: %v", err)
					}
					bin, err := funseeker.Load(res.Stripped)
					if err != nil {
						tb.Fatalf("bench corpus: %v", err)
					}
					benchSet = append(benchSet, benchCase{bin: bin, gt: res.GT})
					benchBytes += len(res.Stripped)
				}
			}
		}
	})
	return benchSet
}

// benchSetBytes reports throughput in MB/s like the paper's Table III:
// per-binary benchmarks process one (average-sized) binary per op,
// whole-corpus benchmarks process benchBytes per op.
func benchSetBytes(b *testing.B, wholeCorpus bool) {
	b.Helper()
	if wholeCorpus {
		b.SetBytes(int64(benchBytes))
	} else {
		b.SetBytes(int64(benchBytes / len(benchSet)))
	}
}

// BenchmarkTableI measures the Table I analysis: classifying every end
// branch in a binary by location (entry / indirect-return / exception).
func BenchmarkTableI(b *testing.B) {
	set := benchCorpus(b)
	benchSetBytes(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := set[i%len(set)]
		if _, err := funseeker.ClassifyEndbrs(c.bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 measures the Figure 3 analysis: the three-property
// partition of all ground-truth functions.
func BenchmarkFigure3(b *testing.B) {
	set := benchCorpus(b)
	entries := make([][]uint64, len(set))
	for i, c := range set {
		entries[i] = c.gt.SortedEntries()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		funseeker.AnalyzeProperties(set[i%len(set)].bin, entries[i%len(set)])
	}
}

// benchIdentify runs one options preset across the corpus.
func benchIdentify(b *testing.B, opts funseeker.Options) {
	b.Helper()
	set := benchCorpus(b)
	benchSetBytes(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.IdentifyBinary(set[i%len(set)].bin, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_* measure the four ablation configurations (Table II).
func BenchmarkTableII_Config1(b *testing.B) { benchIdentify(b, funseeker.Config1) }
func BenchmarkTableII_Config2(b *testing.B) { benchIdentify(b, funseeker.Config2) }
func BenchmarkTableII_Config3(b *testing.B) { benchIdentify(b, funseeker.Config3) }
func BenchmarkTableII_Config4(b *testing.B) { benchIdentify(b, funseeker.Config4) }

// BenchmarkTableIII_FunSeeker measures the full algorithm — the paper's
// Table III FunSeeker time column.
func BenchmarkTableIII_FunSeeker(b *testing.B) { benchIdentify(b, funseeker.DefaultOptions) }

// BenchmarkTableIII_IDA measures the IDA Pro model.
func BenchmarkTableIII_IDA(b *testing.B) {
	set := benchCorpus(b)
	benchSetBytes(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.RunIDA(set[i%len(set)].bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII_Ghidra measures the Ghidra model.
func BenchmarkTableIII_Ghidra(b *testing.B) {
	set := benchCorpus(b)
	benchSetBytes(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.RunGhidra(set[i%len(set)].bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII_FETCH measures the FETCH model — the paper's Table
// III FETCH time column (≈5× FunSeeker).
func BenchmarkTableIII_FETCH(b *testing.B) {
	set := benchCorpus(b)
	benchSetBytes(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.RunFETCH(set[i%len(set)].bin); err != nil {
			b.Fatal(err)
		}
	}
}

// evalMatrixOnce replicates the per-binary work of the evaluation matrix
// (both studies, the four ablation configurations, and the three baseline
// tools) the way eval.RunAll issues it, parameterized over how the
// analyses obtain their inputs.
func evalMatrixShared(b *testing.B, c benchCase) {
	ctx := funseeker.NewContext(c.bin)
	if _, err := funseeker.ClassifyEndbrsWithContext(ctx); err != nil {
		b.Fatal(err)
	}
	funseeker.AnalyzePropertiesWithContext(ctx, c.gt.SortedEntries())
	for _, opts := range []funseeker.Options{
		funseeker.Config1, funseeker.Config2, funseeker.Config3, funseeker.Config4,
	} {
		if _, err := funseeker.IdentifyWithContext(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := funseeker.RunIDAWithContext(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := funseeker.RunGhidraWithContext(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := funseeker.RunFETCHWithContext(ctx); err != nil {
		b.Fatal(err)
	}
}

func evalMatrixReload(b *testing.B, c benchCase) {
	if _, err := funseeker.ClassifyEndbrs(c.bin); err != nil {
		b.Fatal(err)
	}
	funseeker.AnalyzeProperties(c.bin, c.gt.SortedEntries())
	for _, opts := range []funseeker.Options{
		funseeker.Config1, funseeker.Config2, funseeker.Config3, funseeker.Config4,
	} {
		if _, err := funseeker.IdentifyBinary(c.bin, opts); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := funseeker.RunIDA(c.bin); err != nil {
		b.Fatal(err)
	}
	if _, err := funseeker.RunGhidra(c.bin); err != nil {
		b.Fatal(err)
	}
	if _, err := funseeker.RunFETCH(c.bin); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEvalMatrix compares the full tool×config evaluation sweep with
// and without the shared per-binary analysis context. "per-tool-reload"
// is the old behaviour — every analysis re-sweeps .text and re-parses
// .eh_frame; "shared-context" memoizes both per binary. One op = the
// whole corpus through the whole matrix.
func BenchmarkEvalMatrix(b *testing.B) {
	set := benchCorpus(b)
	b.Run("per-tool-reload", func(b *testing.B) {
		benchSetBytes(b, true)
		for i := 0; i < b.N; i++ {
			for _, c := range set {
				evalMatrixReload(b, c)
			}
		}
	})
	b.Run("shared-context", func(b *testing.B) {
		benchSetBytes(b, true)
		for i := 0; i < b.N; i++ {
			for _, c := range set {
				evalMatrixShared(b, c)
			}
		}
	})
	// Cold single-binary path: one Context used once, versus the direct
	// call — the wrapper must not cost anything measurable.
	b.Run("cold-single-binary", func(b *testing.B) {
		benchSetBytes(b, false)
		for i := 0; i < b.N; i++ {
			c := set[i%len(set)]
			if _, err := funseeker.IdentifyBinary(c.bin, funseeker.Config4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNoFilterEndbr isolates the cost/benefit of
// FILTERENDBR: configuration ④ minus the end-branch filter.
func BenchmarkAblationNoFilterEndbr(b *testing.B) {
	benchIdentify(b, funseeker.Options{UseJumpTargets: true, SelectTailCall: true})
}

// BenchmarkAblationBoundaryOnlyTailCall weakens SELECTTAILCALL to the
// boundary test alone (DESIGN.md §4).
func BenchmarkAblationBoundaryOnlyTailCall(b *testing.B) {
	opts := funseeker.Config4
	opts.TailBoundaryOnly = true
	benchIdentify(b, opts)
}

// BenchmarkCompile measures the synthetic toolchain end to end.
func BenchmarkCompile(b *testing.B) {
	spec := funseeker.GenerateSuite(funseeker.SuiteCoreutils,
		funseeker.CorpusOptions{Scale: 0.5, Seed: 7, Programs: 1})[0]
	cfg := funseeker.BuildConfig{Compiler: funseeker.GCC, Mode: funseeker.ModeX64, Opt: funseeker.O2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.Compile(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoad measures ELF loading plus PLT-map construction.
func BenchmarkLoad(b *testing.B) {
	spec := funseeker.GenerateSuite(funseeker.SuiteBinutils,
		funseeker.CorpusOptions{Scale: 0.5, Seed: 7, Programs: 1})[0]
	cfg := funseeker.BuildConfig{Compiler: funseeker.GCC, Mode: funseeker.ModeX64, Opt: funseeker.O2}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(res.Stripped)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.Load(res.Stripped); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTIIdentify measures the ARM BTI port of the algorithm
// (paper §VI extension).
func BenchmarkBTIIdentify(b *testing.B) {
	spec := funseeker.GenerateSuite(funseeker.SuiteBinutils,
		funseeker.CorpusOptions{Scale: 0.5, Seed: 7, Programs: 1})[0]
	res, err := funseeker.CompileBTI(spec, funseeker.BTIBuildConfig{Opt: funseeker.O2})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(res.TextSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.IdentifyBTI(res.Image); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManualEndbrIdentify measures FunSeeker over -mmanual-endbr
// builds (paper §VI ablation) — the sparse-endbr case leans on C and J′.
func BenchmarkManualEndbrIdentify(b *testing.B) {
	spec := funseeker.GenerateSuite(funseeker.SuiteCoreutils,
		funseeker.CorpusOptions{Scale: 0.5, Seed: 7, Programs: 1})[0]
	cfg := funseeker.BuildConfig{Compiler: funseeker.GCC, Mode: funseeker.ModeX64, Opt: funseeker.O2, ManualEndbr: true}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		b.Fatal(err)
	}
	bin, err := funseeker.Load(res.Stripped)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := funseeker.IdentifyBinary(bin, funseeker.DefaultOptions); err != nil {
			b.Fatal(err)
		}
	}
}
