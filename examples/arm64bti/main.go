// Arm64bti: the paper's §VI future-work extension, running. Builds a
// BTI-enabled AArch64 binary and identifies its functions through the
// same public API an x86 binary takes — funseeker.IdentifyBytes
// dispatches on the ELF header, so no ARM-specific entry point is
// needed. Note how `BTI j` switch-case labels are excluded from the
// landmark set by their own operand — ARM bakes the FILTERENDBR
// distinction into the ISA, and the report shows it: every ground-truth
// pad missing from Endbrs is a jump-only label.
//
// With -o, the stripped image of the first configuration is also
// written to disk (CI uses this to feed an AArch64 binary to the
// funseekerd smoke test).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/funseeker/funseeker"
)

func main() {
	out := flag.String("o", "", "also write the first configuration's ELF image to this path")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "arm64bti:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	spec := &funseeker.ProgramSpec{
		Name: "btidemo",
		Lang: funseeker.LangC,
		Seed: 85,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1}, HasSwitch: true, SwitchCases: 4},
			{Name: "compute", Calls: []int{2}},
			{Name: "leaf", Static: true},
			{Name: "callback", AddressTakenData: true},
			{Name: "impl", Static: true},
			{Name: "fast_path", TailCalls: []int{4}},
			{Name: "slow_path", TailCalls: []int{4}},
		},
	}
	for i, cfg := range []funseeker.BTIBuildConfig{
		{Opt: funseeker.O2},
		{Opt: funseeker.O2, PAC: true},
	} {
		res, err := funseeker.CompileBTI(spec, cfg)
		if err != nil {
			return err
		}
		if out != "" && i == 0 {
			if err := os.WriteFile(out, res.Image, 0o755); err != nil {
				return err
			}
		}

		// The generic entry point: the AArch64 backend is picked from
		// the ELF header, exactly as for an x86 upload.
		report, err := funseeker.IdentifyBytes(res.Image, funseeker.Config4)
		if err != nil {
			return err
		}
		if report.Arch != "aarch64" {
			return fmt.Errorf("dispatched to %q, want aarch64", report.Arch)
		}

		names := make(map[uint64]string, len(res.GT.Funcs))
		for _, f := range res.GT.Funcs {
			names[f.Addr] = f.Name
		}
		padSet := make(map[uint64]bool, len(report.Endbrs))
		for _, p := range report.Endbrs {
			padSet[p] = true
		}

		fmt.Printf("=== %s (backend %s) ===\n", cfg, report.Arch)
		fmt.Printf("call-accepting pads (BTI c / PACIASP): %d\n", len(report.Endbrs))
		for _, site := range res.GT.Endbrs {
			if !padSet[site.Addr] {
				fmt.Printf("  excluded by ISA: %#x (%s pad)\n", site.Addr, site.Role)
			}
		}
		for _, e := range report.Entries {
			name := names[e]
			if name == "" {
				name = "??"
			}
			fmt.Printf("  %#x  %s\n", e, name)
		}
		m := funseeker.Score(report.Entries, res.GT)
		fmt.Printf("precision %.1f%%  recall %.1f%%\n\n", m.Precision(), m.Recall())
	}
	return nil
}
