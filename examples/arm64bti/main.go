// Arm64bti: the paper's §VI future-work extension, running. Builds a
// BTI-enabled AArch64 binary and identifies its functions with the BTI
// port of the FunSeeker algorithm. Note how `BTI j` switch-case labels
// are excluded from the entry set by their own operand — ARM bakes the
// FILTERENDBR distinction into the ISA.
package main

import (
	"fmt"
	"os"

	"github.com/funseeker/funseeker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arm64bti:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := &funseeker.ProgramSpec{
		Name: "btidemo",
		Lang: funseeker.LangC,
		Seed: 85,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1}, HasSwitch: true, SwitchCases: 4},
			{Name: "compute", Calls: []int{2}},
			{Name: "leaf", Static: true},
			{Name: "callback", AddressTakenData: true},
			{Name: "impl", Static: true},
			{Name: "fast_path", TailCalls: []int{4}},
			{Name: "slow_path", TailCalls: []int{4}},
		},
	}
	for _, cfg := range []funseeker.BTIBuildConfig{
		{Opt: funseeker.O2},
		{Opt: funseeker.O2, PAC: true},
	} {
		res, err := funseeker.CompileBTI(spec, cfg)
		if err != nil {
			return err
		}
		report, err := funseeker.IdentifyBTI(res.Image)
		if err != nil {
			return err
		}
		names := make(map[uint64]string, len(res.GT.Funcs))
		for _, f := range res.GT.Funcs {
			names[f.Addr] = f.Name
		}
		fmt.Printf("=== %s ===\n", cfg)
		fmt.Printf("call pads (BTI c / PACIASP): %d   jump pads (BTI j, excluded): %d\n",
			report.CallPads, report.JumpPads)
		for _, e := range report.Entries {
			name := names[e]
			if name == "" {
				name = "??"
			}
			fmt.Printf("  %#x  %s\n", e, name)
		}
		m := funseeker.Score(report.Entries, res.GT)
		fmt.Printf("precision %.1f%%  recall %.1f%%\n\n", m.Precision(), m.Recall())
	}
	return nil
}
