// Setjmp: reproduces the paper's Figure 2a scenario. A call to setjmp is
// followed by an end-branch instruction (the landing point of longjmp's
// indirect return). Treating raw end branches as function entries
// (configuration ①) misreports that point; FILTERENDBR (configuration ②)
// recognizes the preceding PLT call to a known indirect-return function
// and removes it.
package main

import (
	"fmt"
	"os"

	"github.com/funseeker/funseeker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "setjmp:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := &funseeker.ProgramSpec{
		Name: "sortlike",
		Lang: funseeker.LangC,
		Seed: 7,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1}},
			// sort_files saves its context with setjmp, like the ls
			// example in the paper.
			{Name: "sort_files", IndirectReturnCall: "setjmp", CallsPLT: []string{"printf"}},
		},
	}
	cfg := funseeker.BuildConfig{
		Compiler: funseeker.GCC,
		Mode:     funseeker.ModeX64,
		Opt:      funseeker.O2,
	}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		return err
	}
	fmt.Println("indirect-return functions known to compilers:",
		funseeker.IndirectReturnFuncs())

	bin, err := funseeker.Load(res.Stripped)
	if err != nil {
		return err
	}
	dist, err := funseeker.ClassifyEndbrs(bin)
	if err != nil {
		return err
	}
	fmt.Printf("\nend-branch classification: %d at function entries, %d after indirect-return calls, %d at landing pads\n",
		dist.FuncEntry, dist.IndirectReturn, dist.Exception)

	raw, err := funseeker.IdentifyBinary(bin, funseeker.Config1)
	if err != nil {
		return err
	}
	filtered, err := funseeker.IdentifyBinary(bin, funseeker.Config2)
	if err != nil {
		return err
	}
	m1 := funseeker.Score(raw.Entries, res.GT)
	m2 := funseeker.Score(filtered.Entries, res.GT)
	fmt.Printf("\nconfig ① (raw endbr ∪ calls):   precision %.1f%% recall %.1f%% — the setjmp return point is a false entry\n",
		m1.Precision(), m1.Recall())
	fmt.Printf("config ② (+FILTERENDBR):        precision %.1f%% recall %.1f%% — filtered %d indirect-return end branch(es)\n",
		m2.Precision(), m2.Recall(), filtered.FilteredIndirectReturn)
	return nil
}
