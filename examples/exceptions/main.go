// Exceptions: reproduces the paper's Figure 2b scenario. In C++
// binaries every catch block (exception landing pad) starts with an
// end-branch instruction because libstdc++ reaches it through an
// indirect jump. Naively treating end branches as function entries
// floods the result with catch blocks; FunSeeker parses the LSDA
// records in .gcc_except_table to filter them.
package main

import (
	"fmt"
	"os"

	"github.com/funseeker/funseeker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exceptions:", err)
		os.Exit(1)
	}
}

func run() error {
	// A C++ program shaped like the paper's 508.namd example: methods
	// with try/catch blocks.
	spec := &funseeker.ProgramSpec{
		Name: "namdlike",
		Lang: funseeker.LangCPP,
		Seed: 508,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1, 2}},
			{Name: "_ZN8MoleculeC2Ev", HasEH: true, NumLandingPads: 2,
				CallsPLT: []string{"__cxa_throw"}},
			{Name: "_ZN8Molecule7computeEv", HasEH: true, NumLandingPads: 1,
				CallsPLT: []string{"__cxa_throw"}},
			{Name: "helper", Static: true},
		},
	}
	spec.Funcs[1].Calls = []int{3}
	cfg := funseeker.BuildConfig{
		Compiler: funseeker.GCC,
		Mode:     funseeker.ModeX64,
		Opt:      funseeker.O2,
	}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		return err
	}
	bin, err := funseeker.Load(res.Stripped)
	if err != nil {
		return err
	}

	pads, err := funseeker.LandingPads(bin)
	if err != nil {
		return err
	}
	fmt.Printf("exception landing pads found via .gcc_except_table:\n")
	for _, p := range pads {
		fmt.Printf("  %#x\n", p)
	}

	dist, err := funseeker.ClassifyEndbrs(bin)
	if err != nil {
		return err
	}
	total := dist.Total()
	fmt.Printf("\nend branches: %d total, %d (%.0f%%) at exception landing pads\n",
		total, dist.Exception, 100*float64(dist.Exception)/float64(total))

	raw, err := funseeker.IdentifyBinary(bin, funseeker.Config1)
	if err != nil {
		return err
	}
	full, err := funseeker.IdentifyBinary(bin, funseeker.DefaultOptions)
	if err != nil {
		return err
	}
	m1 := funseeker.Score(raw.Entries, res.GT)
	m4 := funseeker.Score(full.Entries, res.GT)
	fmt.Printf("\nconfig ① precision %.1f%% (catch blocks misreported as functions)\n", m1.Precision())
	fmt.Printf("config ④ precision %.1f%% recall %.1f%% (%d landing-pad end branches filtered)\n",
		m4.Precision(), m4.Recall(), full.FilteredLandingPads)
	return nil
}
