// Tailcall: demonstrates SELECTTAILCALL. Static functions reached only
// by tail jumps carry no end branch and are never call targets, so the
// only syntactic evidence for them is a direct jump. FunSeeker accepts a
// jump target as a function entry when the jump escapes its function's
// boundary and the target is referenced from multiple functions; a
// target jumped to from a single site is rejected (one of the paper's
// rare false-negative classes).
package main

import (
	"fmt"
	"os"

	"github.com/funseeker/funseeker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tailcall:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := &funseeker.ProgramSpec{
		Name: "dispatch",
		Lang: funseeker.LangC,
		Seed: 3,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1, 2, 4}},
			// Two wrappers tail-jump into the same implementation.
			{Name: "wrapper_a", TailCalls: []int{3}},
			{Name: "wrapper_b", TailCalls: []int{3}},
			{Name: "impl_shared", Static: true},
			// Only one wrapper reaches this implementation.
			{Name: "wrapper_c", TailCalls: []int{5}},
			{Name: "impl_lone", Static: true},
		},
	}
	cfg := funseeker.BuildConfig{
		Compiler: funseeker.GCC,
		Mode:     funseeker.ModeX64,
		Opt:      funseeker.O2,
	}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		return err
	}
	report, err := funseeker.IdentifyBytes(res.Stripped, funseeker.DefaultOptions)
	if err != nil {
		return err
	}

	found := make(map[uint64]bool, len(report.Entries))
	for _, e := range report.Entries {
		found[e] = true
	}
	fmt.Println("SELECTTAILCALL results:")
	for _, f := range res.GT.Funcs {
		status := "found"
		if !found[f.Addr] {
			status = "MISSED (single-reference tail target)"
		}
		fmt.Printf("  %-14s endbr=%-5v  %s\n", f.Name, f.HasEndbr, status)
	}
	fmt.Printf("\ntail-call targets accepted: %d (of %d direct jump targets)\n",
		len(report.TailCallTargets), len(report.JumpTargets))

	m := funseeker.Score(report.Entries, res.GT)
	fmt.Printf("precision %.1f%%  recall %.1f%%\n", m.Precision(), m.Recall())
	return nil
}
