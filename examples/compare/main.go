// Compare: a miniature Table III. Builds a handful of corpus programs in
// two configurations (x86-64 GCC and x86 Clang) and runs all four
// identification tools, printing precision, recall, and runtime. The
// x86 Clang column shows the .eh_frame-dependent tools (Ghidra, FETCH)
// losing recall, while FunSeeker's end-branch heuristics are unaffected.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/funseeker/funseeker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

// tool pairs a name with its runner.
type tool struct {
	name string
	run  func(*funseeker.Binary) ([]uint64, error)
}

func run() error {
	tools := []tool{
		{"FunSeeker", func(b *funseeker.Binary) ([]uint64, error) {
			r, err := funseeker.IdentifyBinary(b, funseeker.DefaultOptions)
			if err != nil {
				return nil, err
			}
			return r.Entries, nil
		}},
		{"IDA-like", funseeker.RunIDA},
		{"Ghidra-like", funseeker.RunGhidra},
		{"FETCH-like", funseeker.RunFETCH},
	}
	configs := []funseeker.BuildConfig{
		{Compiler: funseeker.GCC, Mode: funseeker.ModeX64, Opt: funseeker.O2},
		{Compiler: funseeker.Clang, Mode: funseeker.ModeX86, Opt: funseeker.O2},
	}
	specs := funseeker.GenerateSuite(funseeker.SuiteCoreutils,
		funseeker.CorpusOptions{Scale: 0.5, Seed: 99, Programs: 8})

	for _, cfg := range configs {
		fmt.Printf("\n=== %s ===\n", cfg)
		fmt.Printf("%-12s %10s %10s %12s\n", "tool", "precision", "recall", "time/binary")
		for _, tl := range tools {
			var m funseeker.Metrics
			var elapsed time.Duration
			for _, spec := range specs {
				res, err := funseeker.Compile(spec, cfg)
				if err != nil {
					return err
				}
				bin, err := funseeker.Load(res.Stripped)
				if err != nil {
					return err
				}
				start := time.Now()
				entries, err := tl.run(bin)
				elapsed += time.Since(start)
				if err != nil {
					return err
				}
				m.Add(funseeker.Score(entries, res.GT))
			}
			fmt.Printf("%-12s %9.2f%% %9.2f%% %12s\n",
				tl.name, m.Precision(), m.Recall(),
				(elapsed / time.Duration(len(specs))).Round(time.Microsecond))
		}
	}
	return nil
}
