// Quickstart: synthesize one CET-enabled binary, identify its functions
// with FunSeeker, and score the result against the ground truth.
package main

import (
	"fmt"
	"os"

	"github.com/funseeker/funseeker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A small program: main calls two helpers; one helper is static
	// (reached only by direct calls, so it carries no end branch), and
	// one function is exported but never referenced inside the binary
	// (reachable only through its end-branch marker).
	spec := &funseeker.ProgramSpec{
		Name: "quickstart",
		Lang: funseeker.LangC,
		Seed: 42,
		Funcs: []funseeker.FuncSpec{
			{Name: "main", Calls: []int{1, 2}, CallsPLT: []string{"printf"}},
			{Name: "parse_args", Calls: []int{2}},
			{Name: "emit", Static: true},
			{Name: "api_entry_point"}, // exported, unreferenced
		},
	}
	cfg := funseeker.BuildConfig{
		Compiler: funseeker.GCC,
		Mode:     funseeker.ModeX64,
		Opt:      funseeker.O2,
	}
	res, err := funseeker.Compile(spec, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("built %s (%s): %d bytes stripped\n",
		spec.Name, cfg, len(res.Stripped))

	// Identify function entries in the stripped binary.
	report, err := funseeker.IdentifyBytes(res.Stripped, funseeker.DefaultOptions)
	if err != nil {
		return err
	}

	names := make(map[uint64]string, len(res.GT.Funcs))
	for _, f := range res.GT.Funcs {
		names[f.Addr] = f.Name
	}
	fmt.Println("\nidentified entries:")
	for _, e := range report.Entries {
		name := names[e]
		if name == "" {
			name = "??"
		}
		fmt.Printf("  %#x  %s\n", e, name)
	}

	m := funseeker.Score(report.Entries, res.GT)
	fmt.Printf("\nprecision %.1f%%  recall %.1f%%\n", m.Precision(), m.Recall())
	return nil
}
